"""Textual code generation for fused elementwise chains.

The interpreted :class:`~repro.engine.runtime.task.FusedPipelineTask`
evaluates a fused map/filter/flat_map chain with a per-record stack
machine: every record pays a step-tuple unpack, a ``call_udf``
try/except, an :func:`~repro.engine.work.unwrap` isinstance check, and
a counter update *per operator*.  Following Flare's approach of
compiling Spark's interpreted operator pipelines to straight-line
code, this module generates Python source for one specialized function
per chain -- a single nested loop with direct UDF calls and no
per-operator dispatch -- compiles it once, and caches it by the
chain's AST fingerprint.

The generated function must be *observationally identical* to the
interpreter, including the cost model's inputs: it returns the same
``(records, counts, works)`` triple, where ``counts[i]`` is the number
of records operator ``i`` processed.  Counts are maintained with one
counter per cardinality-changing step (filters and flat_maps) instead
of one increment per record per operator -- operators between two such
boundaries share the boundary's count.

Fallback rules (the chain stays on the interpreter, with the reason
recorded in an ``Optimizer.Decision``):

* a UDF's purity is refuted or unknown
  (:func:`repro.analysis.effects.analyze_effects` must *prove* it);
* a UDF (or any helper it calls) can produce
  :class:`~repro.engine.work.Weighted` results -- the generated loop
  does per-record work accounting away, so it must be provable that
  there is none to account;
* a UDF has no recoverable source (no AST fingerprint, no cache key).

Compiled functions are cached per process keyed by the chain
fingerprint; the picklable task object
(:class:`~repro.engine.runtime.task.CompiledPipelineTask`) carries
only the source text and the key, so worker processes compile at most
once per distinct chain.
"""

import ast
import hashlib
import threading
import types
import weakref

from .runtime.task import (
    STEP_FILTER,
    STEP_FLATMAP,
    STEP_MAP,
    CompiledPipelineTask,
)
from .work import Weighted

__all__ = [
    "chain_compilability",
    "chain_fingerprint",
    "compile_notes",
    "generate_source",
    "compiled_pipeline_fn",
    "plan_chain_schema",
    "plan_compiled_task",
]

#: How deep the Weighted-escape scan follows resolvable helper calls.
_WEIGHTED_SCAN_DEPTH = 4

#: Per-process cache of compiled pipeline functions, keyed by chain
#: fingerprint.  Shared by the driver and (after fork/pickle) each
#: worker process builds its own on first use.
_COMPILED = {}
_COMPILED_LOCK = threading.Lock()

_STEP_NAMES = {
    STEP_MAP: "map",
    STEP_FILTER: "filter",
    STEP_FLATMAP: "flat_map",
}

#: Per-UDF compilability memo: function object -> (fingerprint | None,
#: reason | None).  Iterative programs re-evaluate the same chains
#: every superstep; the AST fingerprint and Weighted scan are pure
#: functions of the live function object, so memoize per object (weak
#: keys: dropping a UDF drops its entry).  ``analyze_effects`` keeps
#: its own cache.
_UDF_MEMO = weakref.WeakKeyDictionary()
_UDF_MEMO_LOCK = threading.Lock()


# ----------------------------------------------------------------------
# Gating: which chains may compile
# ----------------------------------------------------------------------


def _unwrap_callable(fn):
    fn = getattr(fn, "original", fn)
    func = getattr(fn, "func", None)
    if func is not None and hasattr(fn, "keywords"):
        return _unwrap_callable(func)
    bound = getattr(fn, "__func__", None)
    if bound is not None:
        return _unwrap_callable(bound)
    return fn


def _resolve_name(fn, name):
    """A bare name as the UDF would resolve it: closure, then globals."""
    code = getattr(fn, "__code__", None)
    closure = getattr(fn, "__closure__", None)
    if code is not None and closure:
        for var, cell in zip(code.co_freevars, closure):
            if var == name:
                try:
                    return cell.cell_contents
                except ValueError:  # pragma: no cover - empty cell
                    return None
    return getattr(fn, "__globals__", {}).get(name)


def _mentions_weighted(fn, _visited=None, _depth=_WEIGHTED_SCAN_DEPTH):
    """Can ``fn`` (or a resolvable helper it calls) produce a
    :class:`Weighted` result?

    Conservative: any syntactic reference to the name ``Weighted``
    (including via attribute access) counts, an unavailable AST counts,
    and a resolvable called class that subclasses ``Weighted`` counts.
    Bare-name calls that do not resolve are ignored -- callers only
    consult this scan after purity is *proven*, which already required
    every effectful call to resolve.
    """
    from ..analysis.effects import function_ast

    fn = _unwrap_callable(fn)
    fndef = function_ast(fn)
    if fndef is None:
        return True
    for node in ast.walk(fndef):
        if isinstance(node, ast.Name) and node.id == "Weighted":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "Weighted":
            return True
    if _depth <= 0:
        return True
    visited = _visited if _visited is not None else set()
    code = getattr(fn, "__code__", None)
    if code is not None:
        if id(code) in visited:
            return False
        visited.add(id(code))
    called = sorted({
        node.func.id
        for node in ast.walk(fndef)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
    })
    for name in called:
        value = _resolve_name(fn, name)
        value = getattr(value, "original", value)
        if value is None:
            continue
        if isinstance(value, type):
            if issubclass(value, Weighted):
                return True
            continue
        if isinstance(value, types.FunctionType):
            if _mentions_weighted(value, visited, _depth - 1):
                return True
    return False


def chain_compilability(steps):
    """``(fingerprint, None)`` when every step may compile, else
    ``(None, reason)`` naming the first step that cannot.

    ``steps`` are ``(kind, fn, operator)`` triples as built by the
    executor (see :class:`~repro.engine.runtime.task.FusedPipelineTask`).
    """
    fingerprints = []
    for kind, fn, operator in steps:
        fingerprint, reason = _udf_compilability(fn)
        if fingerprint is None:
            return None, "%s %s" % (operator, reason)
        fingerprints.append((_STEP_NAMES[kind], fingerprint))
    return chain_fingerprint(fingerprints), None


def _udf_compilability(fn):
    """``(fingerprint, None)`` or ``(None, reason-sans-operator)`` for
    one UDF, memoized per function object."""
    try:
        cached = _UDF_MEMO.get(fn)
    except TypeError:  # pragma: no cover - non-weakref-able callable
        cached = None
        memoizable = False
    else:
        memoizable = True
    if cached is not None:
        return cached
    result = _udf_compilability_uncached(fn)
    if memoizable:
        with _UDF_MEMO_LOCK:
            _UDF_MEMO[fn] = result
    return result


def _udf_compilability_uncached(fn):
    from ..analysis.effects import analyze_effects, fingerprint_function

    report = analyze_effects(fn)
    if report.pure is False:
        return None, "is impure"
    if report.pure is not True:
        return None, "purity unproven"
    if _mentions_weighted(fn):
        return None, "may return Weighted"
    fingerprint = fingerprint_function(fn)
    if fingerprint is None:
        return None, "has no recoverable source"
    return fingerprint, None


def chain_fingerprint(kind_fingerprint_pairs):
    """Stable hex key for a chain of (step kind, UDF fingerprint)."""
    digest = hashlib.sha256()
    for kind, fingerprint in kind_fingerprint_pairs:
        digest.update(("%s:%s\n" % (kind, fingerprint)).encode("utf-8"))
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------------
# Source generation
# ----------------------------------------------------------------------


def generate_source(kinds, name="_pipeline", input_spec=None):
    """Python source of the specialized loop for a chain's step kinds.

    The function takes ``(_part, _udfs)`` and returns
    ``(_out, counts)`` with exactly the per-operator counts the
    interpreter reports: every operator is counted once per record
    *entering* it, so one counter per filter/flat_map boundary
    suffices.  The source depends only on the step-kind sequence; UDFs
    are passed in at call time, which keeps the compiled code object
    free of closure state.

    With ``input_spec`` (a proven ``(kinds, scalar)`` columnar schema
    from :mod:`repro.analysis.schema`), the loop reads
    :class:`~repro.engine.columnar.ColumnarPartition` buffers
    *directly* -- one ``tolist()`` per column, lazily zipped for tuple
    records -- instead of decoding the whole partition to a record
    list at the loop boundary.  The specialization is guarded at
    runtime (shape-checked against the actual partition), so a plain
    list or a differently-shaped partition falls through to ordinary
    iteration and the loop stays value-identical.
    """
    num = len(kinds)
    if num == 0:
        raise ValueError("cannot generate a pipeline with no steps")
    lines = [
        "def %s(_part, _udfs):" % name,
        "    %s = _udfs" % "".join("_f%d, " % i for i in range(num)),
        "    _out = []",
        "    _append = _out.append",
        "    _n = len(_part)",
    ]
    source_var = "_part"
    if input_spec is not None:
        in_kinds, in_scalar = input_spec
        source_var = "_src"
        if in_scalar:
            direct = "_cols[0].tolist()"
        else:
            direct = "zip(%s)" % ", ".join(
                "_cols[%d].tolist()" % j for j in range(len(in_kinds))
            )
        lines += [
            '    _cols = getattr(_part, "columns", None)',
            "    if (_cols is not None and _part.kinds == %r"
            % in_kinds,
            "            and _part.scalar is %r):" % bool(in_scalar),
            "        _src = %s" % direct,
            "    else:",
            "        _src = _part",
        ]
    # A counter only exists where cardinality changes *and* a later
    # operator consumes the changed count.
    counted = [
        i
        for i, kind in enumerate(kinds[:-1])
        if kind in (STEP_FILTER, STEP_FLATMAP)
    ]
    for i in counted:
        lines.append("    _c%d = 0" % i)
    lines.append("    for _v0 in %s:" % source_var)
    indent = 2
    var = 0
    count_exprs = []
    current = "_n"
    for i, kind in enumerate(kinds):
        pad = "    " * indent
        count_exprs.append(current)
        if kind == STEP_MAP:
            lines.append("%s_v%d = _f%d(_v%d)" % (pad, var + 1, i, var))
            var += 1
        elif kind == STEP_FILTER:
            lines.append("%sif not _f%d(_v%d):" % (pad, i, var))
            lines.append("%s    continue" % pad)
            if i in counted:
                lines.append("%s_c%d += 1" % (pad, i))
                current = "_c%d" % i
        elif kind == STEP_FLATMAP:
            lines.append(
                "%sfor _v%d in _f%d(_v%d):" % (pad, var + 1, i, var)
            )
            indent += 1
            var += 1
            if i in counted:
                lines.append("%s_c%d += 1" % ("    " * indent, i))
                current = "_c%d" % i
        else:
            raise ValueError("unknown step kind %r" % (kind,))
    lines.append("%s_append(_v%d)" % ("    " * indent, var))
    lines.append("    return _out, [%s]" % ", ".join(count_exprs))
    return "\n".join(lines) + "\n"


def compiled_pipeline_fn(key, source, name="_pipeline"):
    """The compiled callable for ``source``, cached per process."""
    fn = _COMPILED.get(key)
    if fn is not None:
        return fn
    with _COMPILED_LOCK:
        fn = _COMPILED.get(key)
        if fn is None:
            namespace = {}
            code = compile(source, "<repro.codegen %s>" % key, "exec")
            exec(code, namespace)
            fn = namespace[name]
            _COMPILED[key] = fn
    return fn


def compiled_cache_size():
    """Number of distinct chains compiled in this process."""
    return len(_COMPILED)


def clear_compiled_cache():
    """Drop every cached compiled pipeline (test isolation hook)."""
    with _COMPILED_LOCK:
        _COMPILED.clear()


# ----------------------------------------------------------------------
# Planning entry point (the executor calls this per fused chain)
# ----------------------------------------------------------------------


def plan_compiled_task(steps, tracer=None, schema=None):
    """A :class:`CompiledPipelineTask` for ``steps``, or
    ``(None, reason)`` when the chain must stay interpreted.

    Compilation happens at most once per chain fingerprint per
    process; a cache hit builds the (cheap, picklable) task object
    without touching ``compile``.  On a miss, a ``codegen`` span is
    emitted through ``tracer`` covering source generation and
    compilation.

    ``schema`` (a :class:`repro.analysis.schema.ChainSchema`, supplied
    when ``schema_inference`` is on) switches planning to the
    schema-specialized mode: a *proven* chain input schema generates
    the columnar-direct loop, with the schema spec folded into the
    chain fingerprint so direct and plain variants never share a cache
    slot; any unknown or refuted input verdict falls back to the
    interpreter, with the verdict as the reason.

    Returns ``(task, None)`` or ``(None, reason)``.
    """
    key, reason = chain_compilability(steps)
    if key is None:
        return None, reason
    input_spec = None
    if schema is not None:
        if schema.input_verdict is not True:
            verdict = (
                "refuted" if schema.input_verdict is False else "unknown"
            )
            return None, "input schema %s (%r)" % (
                verdict, schema.input_schema,
            )
        input_spec = schema.input_spec
        # Fold the schema spec into the key: the direct source text
        # differs from the plain variant, so they must never share a
        # compiled-cache slot.
        key = chain_fingerprint([("schema", "%s|%s" % (
            key, schema.spec_token(),
        ))])
    kinds = [kind for kind, _fn, _operator in steps]
    if key in _COMPILED:
        source = generate_source(kinds, input_spec=input_spec)
        return CompiledPipelineTask(steps, source, key), None
    operator = "+".join(operator for _kind, _fn, operator in steps)
    if tracer is not None and tracer.enabled:
        from ..observe.events import KIND_CODEGEN

        with tracer.span(
            "codegen:%s" % operator,
            KIND_CODEGEN,
            chain=operator,
            steps=len(steps),
            key=key,
        ) as args:
            source = generate_source(kinds, input_spec=input_spec)
            compiled_pipeline_fn(key, source)
            args["source_lines"] = source.count("\n")
    else:
        source = generate_source(kinds, input_spec=input_spec)
        compiled_pipeline_fn(key, source)
    return CompiledPipelineTask(steps, source, key), None


def plan_chain_schema(chain):
    """The :class:`~repro.analysis.schema.ChainSchema` for a fused
    chain of plan nodes.

    Lazy import: ``repro.analysis`` imports ``repro.engine``, so
    engine modules must not import the analysis layer at module scope.
    """
    from ..analysis.schema import chain_schema

    return chain_schema(chain)


# ----------------------------------------------------------------------
# Explain support
# ----------------------------------------------------------------------


def compile_notes(root):
    """Per-node notes for ``Bag.explain(compile=True)``.

    Each fused chain's top node is annotated ``compiled=yes(<key>)``
    or ``compiled=no(<reason>)``, mirroring what the executor would
    decide with ``compile_pipelines`` on.
    """
    from . import dag
    from . import plan as p

    notes = {}
    for unit in dag.plan_units(root):
        if unit.chain is None:
            continue
        steps = []
        for op in unit.chain:
            if isinstance(op, p.Map):
                kind = STEP_MAP
            elif isinstance(op, p.Filter):
                kind = STEP_FILTER
            else:
                kind = STEP_FLATMAP
            name = op.name
            if op.label:
                name += "[%s]" % op.label
            steps.append((kind, op.fn, name))
        key, reason = chain_compilability(steps)
        if key is not None:
            notes[id(unit.node)] = "compiled=yes(%s)" % key
        else:
            notes[id(unit.node)] = "compiled=no(%s)" % reason
    return notes

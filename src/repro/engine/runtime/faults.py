"""Deterministic fault injection for the task runtime.

Tests (and chaos-style experiments) register *kill plans* against a
context's fault injector; the scheduler consults the plans as it builds
each dispatch and marks the doomed attempts, which then die inside the
worker with :class:`~repro.errors.InjectedFault` -- the same path a
preempted or crashed worker would take, minus the nondeterminism.

Stages are addressed by **dispatch ordinal**: the executor numbers the
task sets a job *can* dispatch 0, 1, 2, ... in plan order at planning
time (see :mod:`repro.engine.dag`), before anything runs.  Because the
numbering is fixed by the plan rather than by runtime completion
order, a plan keyed on ``(stage, task)`` hits the same task whether
stages run one at a time or concurrently under the DAG scheduler.
Plans can alternatively match on the operator name of the dispatched
task (``"ReduceByKey"``, ``"Map[phase1]"``, substring match), which is
stabler across plan refactors.

Thread safety: the DAG scheduler consults the injector from concurrent
dispatch threads, so consuming a planned failure is atomic -- each
planned failure is injected exactly once no matter how dispatches
interleave.
"""

import threading


class _KillPlan:
    __slots__ = ("stage", "operator", "task_index", "remaining")

    def __init__(self, stage, operator, task_index, times):
        self.stage = stage
        self.operator = operator
        self.task_index = task_index
        self.remaining = times

    def matches(self, stage_ordinal, operator, task_index):
        if self.remaining <= 0:
            return False
        if self.task_index is not None and task_index != self.task_index:
            return False
        if self.stage is not None and stage_ordinal != self.stage:
            return False
        if self.operator is not None and self.operator not in operator:
            return False
        return True


class FaultInjector:
    """Plans deterministic task failures; consulted at dispatch time."""

    def __init__(self):
        self._plans = []
        self._lock = threading.Lock()
        #: Count of faults actually injected (handy for assertions).
        self.injected = 0

    def kill_task(self, task_index=None, stage=None, operator=None,
                  times=1):
        """Plan ``times`` consecutive failures of a matching task.

        Args:
            task_index: Task (partition) index to kill, or ``None`` for
                any task.
            stage: Dispatch ordinal to match, or ``None`` for any.
            operator: Substring of the dispatched operator name to
                match, or ``None`` for any.
            times: How many attempts to kill before letting the task
                succeed (set it at or above the retry budget to force a
                permanent failure).
        """
        if stage is None and operator is None and task_index is None:
            raise ValueError(
                "kill_task needs at least one of task_index, stage, "
                "operator"
            )
        if times < 1:
            raise ValueError("times must be >= 1")
        with self._lock:
            self._plans.append(
                _KillPlan(stage, operator, task_index, times)
            )

    def should_fail(self, stage_ordinal, operator, task_index):
        """Consume one planned failure for this attempt, if any."""
        with self._lock:
            for plan in self._plans:
                if plan.matches(stage_ordinal, operator, task_index):
                    plan.remaining -= 1
                    self.injected += 1
                    return True
        return False

    @property
    def pending(self):
        """Failures planned but not yet injected."""
        with self._lock:
            return sum(plan.remaining for plan in self._plans)

    def reset(self):
        with self._lock:
            self._plans.clear()
            self.injected = 0

"""Property-based tests: engine operators against reference semantics."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineContext, laptop_config

keys = st.integers(min_value=0, max_value=5)
values = st.integers(min_value=-100, max_value=100)
keyed_records = st.lists(st.tuples(keys, values), max_size=30)
elements = st.lists(values, max_size=30)
partitions = st.integers(min_value=1, max_value=7)


def make_ctx():
    return EngineContext(laptop_config())


@settings(max_examples=40, deadline=None)
@given(data=elements, n=partitions)
def test_partitioning_never_loses_elements(data, n):
    ctx = make_ctx()
    bag = ctx.bag_of(data, num_partitions=n)
    assert Counter(bag.collect()) == Counter(data)


@settings(max_examples=40, deadline=None)
@given(data=elements)
def test_map_matches_builtin(data):
    ctx = make_ctx()
    got = ctx.bag_of(data).map(lambda x: x * 3 + 1).collect()
    assert Counter(got) == Counter(x * 3 + 1 for x in data)


@settings(max_examples=40, deadline=None)
@given(data=elements)
def test_filter_matches_builtin(data):
    ctx = make_ctx()
    got = ctx.bag_of(data).filter(lambda x: x % 2 == 0).collect()
    assert Counter(got) == Counter(x for x in data if x % 2 == 0)


@settings(max_examples=40, deadline=None)
@given(data=keyed_records, n=partitions)
def test_reduce_by_key_matches_reference(data, n):
    ctx = make_ctx()
    got = ctx.bag_of(data).reduce_by_key(
        lambda a, b: a + b, num_partitions=n
    ).collect_as_map()
    expected = {}
    for key, value in data:
        expected[key] = expected.get(key, 0) + value
    assert got == expected


@settings(max_examples=40, deadline=None)
@given(data=keyed_records)
def test_group_by_key_matches_reference(data):
    ctx = make_ctx()
    got = {
        k: Counter(v)
        for k, v in ctx.bag_of(data).group_by_key().collect()
    }
    expected = {}
    for key, value in data:
        expected.setdefault(key, Counter())[value] += 1
    assert got == expected


@settings(max_examples=40, deadline=None)
@given(left=keyed_records, right=keyed_records)
def test_join_matches_nested_loop(left, right):
    ctx = make_ctx()
    got = ctx.bag_of(left).join(ctx.bag_of(right)).collect()
    expected = Counter(
        (lk, (lv, rv))
        for lk, lv in left
        for rk, rv in right
        if lk == rk
    )
    assert Counter(got) == expected


@settings(max_examples=40, deadline=None)
@given(left=keyed_records, right=keyed_records)
def test_broadcast_join_equals_repartition_join(left, right):
    ctx = make_ctx()
    repartition = ctx.bag_of(left).join(ctx.bag_of(right)).collect()
    broadcast = ctx.bag_of(left).join(
        ctx.bag_of(right), strategy="broadcast"
    ).collect()
    assert Counter(repartition) == Counter(broadcast)


@settings(max_examples=40, deadline=None)
@given(left=keyed_records, right=keyed_records)
def test_subtract_by_key_matches_reference(left, right):
    ctx = make_ctx()
    got = ctx.bag_of(left).subtract_by_key(ctx.bag_of(right)).collect()
    right_keys = {k for k, _v in right}
    expected = Counter(
        (k, v) for k, v in left if k not in right_keys
    )
    assert Counter(got) == expected


@settings(max_examples=40, deadline=None)
@given(data=elements)
def test_distinct_matches_set(data):
    ctx = make_ctx()
    got = ctx.bag_of(data).distinct().collect()
    assert sorted(got) == sorted(set(data))


@settings(max_examples=40, deadline=None)
@given(a=elements, b=elements)
def test_union_is_multiset_sum(a, b):
    ctx = make_ctx()
    got = ctx.bag_of(a).union(ctx.bag_of(b)).collect()
    assert Counter(got) == Counter(a) + Counter(b)


@settings(max_examples=40, deadline=None)
@given(data=elements)
def test_count_and_sum(data):
    ctx = make_ctx()
    bag = ctx.bag_of(data)
    assert bag.count() == len(data)
    assert bag.sum() == sum(data)


@settings(max_examples=40, deadline=None)
@given(data=elements, n=partitions)
def test_zip_with_unique_id_bijective(data, n):
    ctx = make_ctx()
    pairs = ctx.bag_of(data, num_partitions=n).zip_with_unique_id(
    ).collect()
    ids = [i for _e, i in pairs]
    assert len(set(ids)) == len(data)
    assert Counter(e for e, _i in pairs) == Counter(data)

"""The execution backends: serial, process pool, and their contract."""

import os
import types

import pytest

from repro.engine import laptop_config
from repro.engine.runtime import (
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
)
from repro.engine.runtime.task import Invocation, MapPartitionsTask
from repro.errors import SerializationError


def _double_partition(part, _index):
    return [x * 2 for x in part]


class GeneratorResultTask:
    """A task whose *result* cannot be serialized back to the driver."""

    operator = "Gen[test]"

    def __call__(self, part):
        return (x for x in part)


def invocations_for(task, parts, with_index=False):
    return [
        Invocation(task, (part, i) if with_index else (part,), i)
        for i, part in enumerate(parts)
    ]


PARTS = [[1, 2], [3], [], [4, 5, 6]]


class TestSerialBackend:
    def test_runs_inline_in_order(self):
        backend = SerialBackend()
        task = MapPartitionsTask(_double_partition, "Map[x2]")
        outcomes = backend.run_invocations(
            invocations_for(task, PARTS, with_index=True)
        )
        assert [o.task_index for o in outcomes] == [0, 1, 2, 3]
        assert all(o.ok for o in outcomes)
        assert [o.value for o in outcomes] == [
            ([2, 4], 0), ([6], 0), ([], 0), ([8, 10, 12], 0)
        ]
        assert all(o.worker_pid == os.getpid() for o in outcomes)

    def test_failure_comes_back_as_data(self):
        backend = SerialBackend()

        def boom(_part, _index):
            raise ValueError("broken partition")

        task = MapPartitionsTask(boom, "Map[boom]")
        outcomes = backend.run_invocations(
            invocations_for(task, [[1]], with_index=True)
        )
        (outcome,) = outcomes
        assert not outcome.ok
        assert "broken partition" in str(outcome.error)
        assert "ValueError" in outcome.error_traceback
        assert outcome.seconds >= 0


class TestProcessPoolBackend:
    def test_correct_results_in_task_order(self):
        backend = ProcessPoolBackend(num_workers=2)
        task = MapPartitionsTask(
            lambda part, _i: [x * 2 for x in part], "Map[x2]"
        )
        outcomes = backend.run_invocations(
            invocations_for(task, PARTS, with_index=True)
        )
        assert all(o.ok for o in outcomes)
        assert [o.value for o in outcomes] == [
            ([2, 4], 0), ([6], 0), ([], 0), ([8, 10, 12], 0)
        ]

    def test_tasks_run_in_other_processes(self):
        backend = ProcessPoolBackend(num_workers=2)
        task = MapPartitionsTask(lambda part, _i: list(part), "Map[id]")
        outcomes = backend.run_invocations(
            invocations_for(task, PARTS, with_index=True)
        )
        assert all(o.worker_pid != os.getpid() for o in outcomes)
        assert all(o.worker_pid > 0 for o in outcomes)

    def test_unserializable_closure_is_a_preflight_error(self):
        import threading

        lock = threading.Lock()
        backend = ProcessPoolBackend(num_workers=2)
        task = MapPartitionsTask(
            lambda part, _i: (lock.acquire(), part), "Map[locked]"
        )
        with pytest.raises(SerializationError, match=r"Map\[locked\]"):
            backend.run_invocations(
                invocations_for(task, [[1]], with_index=True)
            )

    def test_unserializable_result_reported_per_task(self):
        backend = ProcessPoolBackend(num_workers=2)
        outcomes = backend.run_invocations(
            invocations_for(GeneratorResultTask(), [[1, 2]])
        )
        (outcome,) = outcomes
        assert not outcome.ok
        assert isinstance(outcome.error, SerializationError)
        assert "Gen[test]" in str(outcome.error)

    def test_rejects_negative_worker_count(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(num_workers=-1)

    def test_zero_means_all_cores(self):
        backend = ProcessPoolBackend(num_workers=0)
        assert backend.num_workers == (os.cpu_count() or 1)


class TestMakeBackend:
    def test_serial(self):
        backend = make_backend(laptop_config(backend="serial"))
        assert isinstance(backend, SerialBackend)

    def test_process_takes_worker_count(self):
        backend = make_backend(
            laptop_config(backend="process", num_workers=3)
        )
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.num_workers == 3

    def test_unknown_backend_rejected(self):
        bogus = types.SimpleNamespace(backend="threads")
        with pytest.raises(ValueError, match="threads"):
            make_backend(bogus)

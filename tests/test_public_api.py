"""The top-level `repro` package surface.

Regression net for the lazy-attribute machinery: a bad `__getattr__`
once recursed to a segfault precisely on `repro.<lazy symbol>` access
from a fresh interpreter, so these run in subprocesses.
"""

import subprocess
import sys

import pytest

import repro


def run_fresh(code):
    return subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        timeout=120,
    )


class TestLazyAttributes:
    def test_fresh_interpreter_lazy_symbol(self):
        result = run_fresh(
            "import repro; print(repro.group_by_key_into_nested_bag)"
        )
        assert result.returncode == 0, result.stderr

    def test_fresh_interpreter_lazy_submodule(self):
        result = run_fresh("import repro; print(repro.core)")
        assert result.returncode == 0, result.stderr

    @pytest.mark.parametrize(
        "name",
        [
            "InnerScalar",
            "InnerBag",
            "NestedBag",
            "group_by_key_into_nested_bag",
            "nested_group_by_key",
            "nested_map",
            "while_loop",
            "cond",
            "lifted",
            "nested_udf",
            "LoweringConfig",
        ],
    )
    def test_symbol_resolves(self, name):
        assert getattr(repro, name) is not None

    @pytest.mark.parametrize(
        "name",
        ["core", "lang", "engine", "baselines", "tasks", "data",
         "bench"],
    )
    def test_submodule_resolves(self, name):
        module = getattr(repro, name)
        assert module.__name__ == "repro." + name

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing


class TestEagerExports:
    def test_engine_symbols(self):
        assert repro.EngineContext is not None
        assert repro.Bag is not None
        assert repro.ClusterConfig is not None
        assert repro.Weighted is not None

    def test_error_hierarchy(self):
        assert issubclass(repro.SimulatedOutOfMemory,
                          repro.ExecutionError)
        assert issubclass(repro.ExecutionError, repro.ReproError)
        assert issubclass(repro.FlatteningError, repro.ReproError)
        assert issubclass(repro.ParsingError, repro.ReproError)
        assert issubclass(repro.UdfError, repro.ExecutionError)

    def test_version(self):
        assert repro.__version__


class TestReprs:
    def test_primitive_reprs(self):
        ctx = repro.EngineContext()
        nested = repro.group_by_key_into_nested_bag(
            ctx.bag_of([("a", 1), ("b", 2)])
        )
        assert "num_groups=2" in repr(nested)
        assert "num_tags=2" in repr(nested.keys)
        assert "level=1" in repr(nested.inner)

    def test_context_repr(self):
        ctx = repro.EngineContext()
        ctx.bag_of([1]).count()
        assert "jobs=1" in repr(ctx)

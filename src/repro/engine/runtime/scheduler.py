"""The task scheduler: stage dispatch, retries, and straggler tracking.

The executor hands the scheduler one *task set* per stage evaluation --
the same task callable applied to each partition's arguments -- and the
scheduler owns everything a Spark ``TaskSchedulerImpl`` would: running
the set on the configured backend, retrying failed attempts within the
retry budget, re-raising permanent failures, and recording per-task
measured wall-clock (plus retry and straggler counts) into the stage's
metrics, next to the simulated counters.

Measured-time accounting: only the *successful* attempt of a task is
credited to ``stage.task_seconds`` -- a retried task is never counted
twice.  Time burned in failed attempts accrues separately to
``stage.failed_attempt_seconds``.

Retry policy: only *transient* failures are retried -- injected faults
(:class:`~repro.engine.runtime.faults.FaultInjector`) and any error
whose ``retryable`` attribute is true.  Deterministic failures
(:class:`~repro.errors.UdfError`, simulated OOM, plan errors) fail the
job on first occurrence: rerunning a UDF bug ``max_task_attempts``
times would only repeat its side effects.

Effect gating (:mod:`repro.analysis.effects`): a retry silently
re-executes the task's UDFs, which is only sound when they are
deterministic.  When the effect analysis *refutes* determinism for a
task about to be retried, the scheduler refuses to do so silently: it
warns once per operator and surfaces a ``nondeterministic_retry``
trace instant before proceeding (retries stay on -- a loud retry beats
a lost job, but the discrepancy is now observable).  Speculative
re-execution of stragglers (``config.speculative_execution``) is
gated the other way around: a speculative copy runs *only* when all
three effect dimensions (purity, determinism, I/O-freedom) are
**proven** -- an unknown verdict suppresses speculation and surfaces
the same instant with ``reason="speculation"``.  Speculative seconds
accrue to ``stage.failed_attempt_seconds``: redundant work, never
billed as task time.

Tracing (:mod:`repro.observe`): when the context traces, every
dispatch emits a ``stage`` span wrapping one ``task_set`` span per
retry wave, ``task`` spans re-anchored from worker outcomes onto the
driver timeline, and ``fault`` / ``task_retry`` / ``straggler``
instants.  All hooks are guarded by ``tracer.enabled``; with tracing
off the only cost is one attribute read per dispatch.

Concurrency: the DAG scheduler (:mod:`repro.engine.dag`) drives
``run_stage`` from several dispatch threads at once, so the attempt
counters are lock-guarded and each dispatch thread gets its own trace
lane (set with :meth:`TaskScheduler.set_dispatch_lane`), keeping
concurrent stage spans from garbling each other's nesting.
:meth:`TaskScheduler.submit` / :meth:`TaskScheduler.submit_stage` are
the non-blocking entry points: work goes onto a bounded dispatch pool
(``config.max_concurrent_stages`` threads) and completion is observed
through the returned future's callbacks.  Straggler detection needs no
cross-stage coordination by construction: each dispatch compares a
task only against the other tasks of its *own* set, so a slow
co-scheduled sibling stage can never skew another stage's baseline.
"""

import concurrent.futures
import os
import statistics
import threading
import time
import warnings

from ...errors import TaskFailedError
from ...observe import NULL_TRACER
from ...observe.events import (
    DRIVER_LANE,
    KIND_FAULT,
    KIND_NONDETERMINISTIC_RETRY,
    KIND_SPECULATION,
    KIND_STAGE,
    KIND_STRAGGLER,
    KIND_TASK,
    KIND_TASK_RETRY,
    KIND_TASK_SET,
    scheduler_lane,
    worker_lane,
)
from .backends import SerialBackend, make_backend
from .faults import FaultInjector
from .task import Invocation


def _default_dispatch_slots():
    return max(2, min(8, os.cpu_count() or 2))


class TaskScheduler:
    """Dispatches per-partition tasks for one engine context."""

    def __init__(self, config, fault_injector=None, backend=None,
                 tracer=None):
        self.config = config
        self.fault_injector = (
            fault_injector if fault_injector is not None else FaultInjector()
        )
        self.backend = backend if backend is not None else make_backend(config)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Backends emit their own serde spans through the context's
        # tracer (plain attribute: backends default to NULL_TRACER).
        self.backend.tracer = self.tracer
        #: Task sets dispatched so far.  When the executor plans a job
        #: it reserves each dispatch's ordinal up front (see
        #: :mod:`repro.engine.dag`) and passes it explicitly; direct
        #: callers that omit it draw from this counter.  Either way the
        #: fault injector's stage addressing stays deterministic.
        self.dispatch_count = 0
        #: Total task attempts ever run, split by outcome.
        self.tasks_launched = 0
        self.tasks_failed = 0
        self.tasks_retried = 0
        #: Speculative straggler copies dispatched (proven-safe only).
        self.tasks_speculated = 0
        # Guards the counters above: concurrent dispatch threads all
        # credit them.
        self._counter_lock = threading.Lock()
        # Operators already warned about unproven re-execution; the
        # warning fires once per operator, the trace instant every time.
        self._effect_warned = set()
        # Per-dispatch-thread trace lane (driver thread: DRIVER_LANE).
        self._lanes = threading.local()
        # Bounded pool backing submit()/submit_stage(); created lazily
        # so serial-scheduler contexts never spawn threads.
        self._dispatch_pool = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Non-blocking submission
    # ------------------------------------------------------------------

    @property
    def dispatch_slots(self):
        """Concurrent dispatches the bounded pool allows."""
        return self.config.max_concurrent_stages or _default_dispatch_slots()

    def _ensure_dispatch_pool(self):
        with self._pool_lock:
            if self._dispatch_pool is None:
                self._dispatch_pool = (
                    concurrent.futures.ThreadPoolExecutor(
                        max_workers=self.dispatch_slots,
                        thread_name_prefix="repro-dispatch",
                    )
                )
            return self._dispatch_pool

    def submit(self, fn, *args):
        """Run ``fn(*args)`` on the bounded dispatch pool, non-blocking.

        Returns a :class:`concurrent.futures.Future`; attach completion
        callbacks with ``add_done_callback``.  Each pool thread tags
        the trace events it emits with its own ``sched-N`` lane.  At
        most :attr:`dispatch_slots` submissions run at once -- the
        bound on in-flight work; excess submissions queue.

        Deadlock rule: submitted callables must never block on another
        future from this pool (the DAG scheduler only submits *ready*
        units, whose inputs are already complete).
        """
        return self._ensure_dispatch_pool().submit(
            self._dispatch_entry, fn, args
        )

    def submit_stage(self, task, args_list, stage=None, ordinal=None):
        """Non-blocking :meth:`run_stage`: returns a future of the values.

        The dispatch ordinal is reserved *now*, at submission time, so
        fault-injection addressing follows submission order even though
        completion order is up to the pool.
        """
        if ordinal is None:
            ordinal = self.reserve_ordinals(1)
        return self.submit(self.run_stage, task, args_list, stage, ordinal)

    def _dispatch_entry(self, fn, args):
        thread_name = threading.current_thread().name
        self._lanes.value = scheduler_lane(thread_name.rsplit("_", 1)[-1])
        try:
            return fn(*args)
        finally:
            self._lanes.value = None

    def set_dispatch_lane(self, lane):
        """Set (or with ``None`` clear) this thread's trace lane."""
        self._lanes.value = lane

    def _dispatch_lane(self):
        lane = getattr(self._lanes, "value", None)
        return DRIVER_LANE if lane is None else lane

    def reserve_ordinals(self, count):
        """Reserve ``count`` consecutive dispatch ordinals; returns the
        first.  The executor calls this at planning time so a job's
        ordinals are fixed by the plan, not by runtime dispatch order."""
        with self._counter_lock:
            base = self.dispatch_count
            self.dispatch_count += count
            return base

    # ------------------------------------------------------------------

    def run_stage(self, task, args_list, stage=None, ordinal=None):
        """Run ``task(*args)`` for every args tuple; return the values.

        Args:
            task: A picklable callable (see
                :mod:`repro.engine.runtime.task`), shared by the set.
            args_list: One argument tuple per task; task ``i`` is
                partition ``i`` of the stage.
            stage: Optional :class:`~repro.engine.metrics.StageMetrics`
                to credit measured seconds / retries / stragglers to.
            ordinal: Pre-reserved dispatch ordinal (see
                :meth:`reserve_ordinals`); drawn from the counter when
                omitted.

        Returns:
            The task return values, in task order.

        Raises:
            The reconstructed task error after a non-retryable failure,
            or :class:`~repro.errors.TaskFailedError` when a task
            exhausts ``config.max_task_attempts``.
        """
        if ordinal is None:
            ordinal = self.reserve_ordinals(1)
        tracer = self.tracer
        if (
            not tracer.enabled
            and not self.fault_injector.pending
            and not getattr(self.config, "speculative_execution", False)
            and isinstance(self.backend, SerialBackend)
        ):
            # (Speculative execution needs the invocation/outcome
            # machinery below, so enabling it forfeits this fast path.)
            # Hot path: a paper-scale stage dispatches >1000 tasks and
            # the serial backend runs them right here, so skip the
            # invocation/outcome machinery -- real failures are
            # non-retryable under the retry policy anyway, and raising
            # in place preserves the original traceback exactly.
            return self._run_serial_fast(task, args_list, stage)
        operator = getattr(task, "operator", type(task).__name__)
        if not tracer.enabled:
            return self._run_outcomes(
                task, args_list, stage, ordinal, operator
            )
        stage_id = stage.stage_id if stage is not None else ordinal
        with tracer.span(
            "stage#%s:%s" % (stage_id, operator),
            KIND_STAGE,
            lane=self._dispatch_lane(),
            dispatch=ordinal,
            operator=operator,
            tasks=len(args_list),
            backend=self.backend.name,
        ) as span_args:
            before = stage.measured_seconds if stage is not None else 0.0
            values = self._run_outcomes(
                task, args_list, stage, ordinal, operator
            )
            if stage is not None:
                # Task spans are capped per stage, so the span carries
                # the *full* measured per-task total itself -- reports
                # and traces agree exactly on stage measured seconds.
                span_args["task_seconds"] = (
                    stage.measured_seconds - before
                )
            return values

    # ------------------------------------------------------------------

    def _run_outcomes(self, task, args_list, stage, ordinal, operator):
        """The outcome-mediated dispatch loop (retries, tracing)."""
        tracer = self.tracer
        collect = tracer.enabled
        span_cap = tracer.max_task_spans
        max_attempts = self.config.max_task_attempts

        lane = self._dispatch_lane()
        final = [None] * len(args_list)
        pending = [
            self._invocation(task, args_list[i], ordinal, operator, i, 1)
            for i in range(len(args_list))
        ]
        wave = 0
        while pending:
            window_start = tracer.now()
            outcomes = self.backend.run_invocations(pending)
            window_end = tracer.now()
            if collect:
                tracer.emit_anchored(
                    "taskset#%d.%d:%s" % (ordinal, wave, operator),
                    KIND_TASK_SET, window_start, 0.0,
                    window_end - window_start, lane,
                    dispatch=ordinal, wave=wave, tasks=len(pending),
                )
            with self._counter_lock:
                self.tasks_launched += len(pending)
            wave += 1
            pending = []
            for outcome in outcomes:
                # Per-task spans are capped per stage (failures and
                # retries always emit); see Tracer.max_task_spans.
                if collect and (
                    outcome.task_index < span_cap
                    or not outcome.ok
                    or outcome.attempt > 1
                ):
                    self._emit_task_events(
                        outcome, operator, ordinal, window_start,
                        window_end,
                    )
                if outcome.ok:
                    if stage is not None:
                        stage.add_task_seconds(
                            outcome.task_index, outcome.seconds
                        )
                    final[outcome.task_index] = outcome
                    continue
                # A failed attempt never counts toward the stage's
                # task_seconds (retried work must not be double-billed);
                # it is tracked separately.
                if stage is not None:
                    stage.add_failed_attempt_seconds(outcome.seconds)
                with self._counter_lock:
                    self.tasks_failed += 1
                if collect:
                    tracer.instant(
                        "fault:%s#%d" % (operator, outcome.task_index),
                        KIND_FAULT,
                        lane=lane,
                        dispatch=ordinal,
                        task=outcome.task_index,
                        attempt=outcome.attempt,
                        error=type(outcome.error).__name__,
                    )
                if not outcome.retryable:
                    self._reraise(outcome)
                if outcome.attempt >= max_attempts:
                    raise TaskFailedError(
                        ordinal,
                        outcome.task_index,
                        outcome.attempt,
                        outcome.error,
                    )
                with self._counter_lock:
                    self.tasks_retried += 1
                if stage is not None:
                    stage.add_task_retries(1)
                # No silent retry of a provably nondeterministic task:
                # the re-run may legitimately produce a different
                # result, so make the hazard observable before it runs.
                report = self._task_effects(task)
                if report is not None and report.deterministic is False:
                    self._note_unproven_reexecution(
                        operator, ordinal, outcome.task_index, lane,
                        "retry",
                        "retrying task of operator %r: its UDFs are "
                        "provably nondeterministic, so the repeated "
                        "attempt may observe a different result"
                        % operator,
                    )
                if collect:
                    tracer.instant(
                        "retry:%s#%d" % (operator, outcome.task_index),
                        KIND_TASK_RETRY,
                        lane=lane,
                        dispatch=ordinal,
                        task=outcome.task_index,
                        next_attempt=outcome.attempt + 1,
                        error=type(outcome.error).__name__,
                    )
                pending.append(
                    self._invocation(
                        task,
                        args_list[outcome.task_index],
                        ordinal,
                        operator,
                        outcome.task_index,
                        outcome.attempt + 1,
                    )
                )
        # Straggler baseline: only this dispatch's own per-task
        # attributed seconds.  Concurrent sibling stages never enter
        # the median, so an unbalanced co-scheduled stage cannot mask
        # (or fabricate) a straggler here.
        stragglers = self._straggler_indices(
            [outcome.seconds for outcome in final]
        )
        if stage is not None:
            stage.add_straggler_tasks(len(stragglers))
        if collect:
            for index in stragglers:
                tracer.instant(
                    "straggler:%s#%d" % (operator, index),
                    KIND_STRAGGLER,
                    lane=lane,
                    dispatch=ordinal,
                    partition=index,
                    seconds=final[index].seconds,
                )
        if stragglers and getattr(
            self.config, "speculative_execution", False
        ):
            self._speculate(
                task, args_list, stage, ordinal, operator, stragglers,
                final, lane,
            )
        return [outcome.value for outcome in final]

    # ------------------------------------------------------------------
    # Effect gating: nondeterministic retries, speculative copies
    # ------------------------------------------------------------------

    def _task_effects(self, task):
        """Combined effect report over the task's UDFs, or ``None``.

        Tasks that carry no user code (shuffle buckets, broadcast
        probes) expose no ``udfs`` attribute and are trivially safe to
        re-execute, so they skip the analysis entirely.  Imported
        lazily: the scheduler must not pull :mod:`repro.analysis` in
        on the plain execution path.
        """
        udfs = getattr(task, "udfs", ())
        if not udfs:
            return None
        from ...analysis.effects import task_effects
        return task_effects(udfs)

    def _note_unproven_reexecution(self, operator, ordinal, index, lane,
                                   reason, message):
        """Warn once per (operator, reason); trace every occurrence."""
        key = (operator, reason)
        with self._counter_lock:
            warn = key not in self._effect_warned
            if warn:
                self._effect_warned.add(key)
        if warn:
            warnings.warn(message, RuntimeWarning, stacklevel=3)
        if self.tracer.enabled:
            self.tracer.instant(
                "nondeterministic-%s:%s#%d" % (reason, operator, index),
                KIND_NONDETERMINISTIC_RETRY,
                lane=lane,
                dispatch=ordinal,
                task=index,
                reason=reason,
            )

    def _speculate(self, task, args_list, stage, ordinal, operator,
                   stragglers, final, lane):
        """Re-dispatch straggler partitions once, if provably safe.

        A speculative copy re-runs a task whose original attempt
        already succeeded, so it is admissible only when every effect
        dimension is *proven*: pure (no state outlives the call),
        deterministic (the copy computes the same value), and I/O-free
        (no externally visible double effect).  Unknown is not good
        enough -- an unproven task surfaces a
        ``nondeterministic_retry`` instant instead of a copy.

        The winning value is the same value by the determinism proof,
        so the original results stand; the copy's wall-clock accrues
        to ``stage.failed_attempt_seconds`` (redundant work, never
        task time), and ``tasks_speculated`` counts the copies.
        """
        report = self._task_effects(task)
        if report is None or not report.proven:
            what = (
                "carries no analyzable UDFs"
                if report is None
                else "is not proven pure, deterministic, and I/O-free"
            )
            self._note_unproven_reexecution(
                operator, ordinal, stragglers[0], lane, "speculation",
                "not speculating stragglers of operator %r: it %s, so "
                "a redundant copy is not provably safe"
                % (operator, what),
            )
            return
        invocations = [
            self._invocation(
                task, args_list[index], ordinal, operator, index,
                final[index].attempt + 1,
            )
            for index in stragglers
        ]
        outcomes = self.backend.run_invocations(invocations)
        with self._counter_lock:
            self.tasks_launched += len(invocations)
            self.tasks_speculated += len(invocations)
        tracer = self.tracer
        for outcome in outcomes:
            if stage is not None:
                stage.add_failed_attempt_seconds(outcome.seconds)
            if tracer.enabled:
                tracer.instant(
                    "speculate:%s#%d" % (operator, outcome.task_index),
                    KIND_SPECULATION,
                    lane=lane,
                    dispatch=ordinal,
                    task=outcome.task_index,
                    seconds=outcome.seconds,
                    won=bool(
                        outcome.ok
                        and outcome.seconds
                        < final[outcome.task_index].seconds
                    ),
                )

    #: Clock skew tolerated between a worker's ``start_epoch`` read and
    #: the driver's dispatch-window reads before re-anchoring falls
    #: back to clamping (seconds).  Workers share the machine's wall
    #: clock, so anything beyond this means the clock was adjusted.
    CLOCK_DRIFT_TOLERANCE_S = 1.0

    def _emit_task_events(self, outcome, operator, ordinal, window_start,
                          window_end):
        """Re-anchor one attempt (and its worker events) to the driver.

        The anchor is the attempt's **own** ``start_epoch`` -- not the
        task set's dispatch time.  A worker that runs tasks from two
        concurrently dispatched stages back-to-back starts the second
        task long after its stage's dispatch; anchoring to the dispatch
        window used to drag such a task (and its worker events)
        backwards, mis-ordering events on the worker's lane.  The
        dispatch window now serves only as a sanity check: when
        ``start_epoch`` lands outside it by more than the drift
        tolerance, the wall clock was adjusted between reads and the
        anchor falls back to clamping into the window.
        """
        tracer = self.tracer
        anchor = outcome.start_epoch
        drift = self.CLOCK_DRIFT_TOLERANCE_S
        if (
            anchor < window_start - drift
            or anchor + outcome.seconds > window_end + drift
        ):
            anchor = min(
                max(anchor, window_start),
                max(window_start, window_end - outcome.seconds),
            )
        lane = (
            self._dispatch_lane()
            if outcome.worker_pid in (0, os.getpid())
            else worker_lane(outcome.worker_pid)
        )
        tracer.emit_anchored(
            "task:%s#%d" % (operator, outcome.task_index),
            KIND_TASK, anchor, 0.0, outcome.seconds, lane,
            dispatch=ordinal,
            task=outcome.task_index,
            attempt=outcome.attempt,
            ok=outcome.ok,
            pid=outcome.worker_pid,
        )
        for name, kind, offset, dur, args in outcome.events or ():
            tracer.emit_anchored(
                name, kind, anchor, offset, dur, lane, **args
            )

    # ------------------------------------------------------------------

    def _run_serial_fast(self, task, args_list, stage):
        """Inline execution with per-task timing but no retry plumbing."""
        perf_counter = time.perf_counter
        values = []
        seconds = []
        for args in args_list:
            start = perf_counter()
            values.append(task(*args))
            seconds.append(perf_counter() - start)
        with self._counter_lock:
            self.tasks_launched += len(args_list)
        if stage is not None:
            for index, value in enumerate(seconds):
                stage.add_task_seconds(index, value)
            stage.add_straggler_tasks(
                len(self._straggler_indices(seconds))
            )
        return values

    def _invocation(self, task, args, ordinal, operator, index, attempt):
        inject = self.fault_injector.should_fail(ordinal, operator, index)
        collect = self.tracer.enabled and (
            index < self.tracer.max_task_spans or attempt > 1
        )
        return Invocation(
            task=task,
            args=tuple(args),
            task_index=index,
            attempt=attempt,
            inject_fault=inject,
            collect_events=collect,
        )

    def _reraise(self, outcome):
        error = outcome.error
        if outcome.error_traceback and outcome.worker_pid != 0:
            # Cross-process errors lose their original traceback; keep
            # the worker-side rendering on the exception for debugging.
            error.worker_traceback = outcome.error_traceback
        raise error

    def _straggler_indices(self, seconds):
        """Indices of tasks that took disproportionately long.

        A task is a straggler when it exceeds both the configured
        multiple of the set's median runtime
        (``config.straggler_factor``, settable via the
        ``REPRO_STRAGGLER_FACTOR`` environment variable) and an
        absolute floor (so microsecond-scale jitter never counts).
        """
        if len(seconds) < 2:
            return []
        median = statistics.median(seconds)
        threshold = max(
            self.config.straggler_min_task_seconds,
            self.config.straggler_factor * median,
        )
        return [
            index for index, value in enumerate(seconds)
            if value > threshold
        ]

    def close(self):
        with self._pool_lock:
            pool = self._dispatch_pool
            self._dispatch_pool = None
        if pool is not None:
            pool.shutdown(wait=True)
        self.backend.close()

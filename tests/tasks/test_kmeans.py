"""K-means: all system variants against the sequential reference."""

import pytest

from repro.baselines.inner_parallel import group_locally
from repro.data import grouped_points, initial_centroids
from repro.tasks import kmeans as km

SEED = 7
ITERS = 6


@pytest.fixture(scope="module")
def configs():
    return initial_centroids(k=3, num_configs=4, seed=SEED)


@pytest.fixture(scope="module")
def records(configs):
    return grouped_points(len(configs), 240, k=3, seed=SEED)


@pytest.fixture(scope="module")
def groups(records):
    return group_locally(records)


@pytest.fixture(scope="module")
def truth(configs, groups):
    return {
        cid: km.kmeans_reference(
            groups[cid], cents, max_iterations=ITERS
        )[0]
        for cid, cents in configs
    }


def close(a, b):
    return km.centroid_shift(a, b) < 1e-9


class TestPrimitives:
    def test_squared_distance(self):
        assert km.squared_distance((0, 0), (3, 4)) == 25

    def test_nearest_index(self):
        centroids = ((0.0, 0.0), (10.0, 10.0))
        assert km.nearest_index((1.0, 1.0), centroids) == 0
        assert km.nearest_index((9.0, 9.0), centroids) == 1

    def test_centroid_shift_zero_for_identical(self):
        c = ((1.0, 2.0), (3.0, 4.0))
        assert km.centroid_shift(c, c) == 0.0

    def test_empty_cluster_keeps_old_centroid(self):
        points = [(0.0, 0.0), (0.1, 0.1)]
        start = ((0.0, 0.0), (100.0, 100.0))
        final, _iters, _work = km.kmeans_reference(points, start)
        assert final[1] == (100.0, 100.0)


class TestReference:
    def test_converges_on_separated_clusters(self):
        points = [(0.0, 0.0), (0.2, 0.0), (10.0, 10.0), (10.2, 10.0)]
        start = ((1.0, 1.0), (9.0, 9.0))
        final, iters, _work = km.kmeans_reference(points, start)
        assert close(final, ((0.1, 0.0), (10.1, 10.0)))
        assert iters < km.DEFAULT_MAX_ITERATIONS

    def test_tolerance_none_runs_all_iterations(self):
        points = [(0.0, 0.0), (1.0, 1.0)]
        _final, iters, _work = km.kmeans_reference(
            points, ((0.5, 0.5),), max_iterations=5, tolerance=None
        )
        assert iters == 5

    def test_work_grows_with_iterations(self):
        points = [(float(i), 0.0) for i in range(20)]
        _f, _i, work1 = km.kmeans_reference(
            points, ((0.0, 0.0),), max_iterations=1, tolerance=None
        )
        _f, _i, work3 = km.kmeans_reference(
            points, ((0.0, 0.0),), max_iterations=3, tolerance=None
        )
        assert work3 == 3 * work1


class TestVariantsAgree:
    def test_parallel_matches_reference(self, ctx, configs, groups,
                                        truth):
        cid, cents = configs[0]
        got = km.kmeans_parallel(
            ctx, groups[cid], cents, max_iterations=ITERS
        )
        assert close(got, truth[cid])

    def test_nested_grouped_matches_reference(self, ctx, records,
                                              configs, truth):
        got = dict(
            km.kmeans_nested_grouped(
                ctx.bag_of(records), configs, max_iterations=ITERS
            ).collect()
        )
        assert all(close(got[cid], truth[cid]) for cid in truth)

    def test_outer_matches_reference(self, ctx, records, configs,
                                     truth):
        got = dict(
            km.kmeans_outer(
                ctx.bag_of(records), configs, max_iterations=ITERS
            ).collect()
        )
        assert all(close(got[cid], truth[cid]) for cid in truth)

    def test_inner_matches_reference(self, ctx, groups, configs, truth):
        got = dict(
            km.kmeans_inner(ctx, groups, configs, max_iterations=ITERS)
        )
        assert all(close(got[cid], truth[cid]) for cid in truth)

    def test_nested_shared_matches_reference(self, ctx, configs):
        points = grouped_points(1, 150, k=3, seed=SEED + 1)
        shared = [p for _c, p in points]
        truth_shared = {
            cid: km.kmeans_reference(
                shared, cents, max_iterations=ITERS
            )[0]
            for cid, cents in configs
        }
        got = dict(
            value
            for _tag, value in km.kmeans_nested_shared(
                ctx, shared, configs, max_iterations=ITERS
            ).collect()
        )
        assert all(
            close(got[cid], truth_shared[cid]) for cid in truth_shared
        )

    def test_forced_cross_sides_agree(self, ctx, configs):
        points = [(0.0, 0.0), (1.0, 1.0), (5.0, 5.0), (6.0, 6.0)]
        results = {}
        for side in ("scalar", "primary"):
            results[side] = dict(
                value
                for _tag, value in km.kmeans_nested_shared(
                    ctx, points, configs,
                    max_iterations=3, cross_side=side,
                ).collect()
            )
        for cid in results["scalar"]:
            assert close(results["scalar"][cid], results["primary"][cid])


class TestConvergenceExits:
    def test_groups_exit_lifted_loop_at_different_iterations(self, ctx):
        """Convergence-based termination makes different configurations
        finish at different iterations (the P1-P3 machinery)."""
        records = grouped_points(3, 90, k=2, seed=3)
        groups = group_locally(records)
        configs = initial_centroids(k=2, num_configs=3, seed=3)
        truth = {
            cid: km.kmeans_reference(
                groups[cid], cents, max_iterations=20, tolerance=1e-3
            )
            for cid, cents in configs
        }
        iter_counts = {truth[cid][1] for cid in truth}
        got = dict(
            km.kmeans_nested_grouped(
                ctx.bag_of(records), configs,
                max_iterations=20, tolerance=1e-3,
            ).collect()
        )
        assert all(close(got[cid], truth[cid][0]) for cid in truth)
        # The scenario itself must exercise uneven exits to be a valid
        # test of P1-P3; if this ever degenerates, reseed.
        assert len(iter_counts) >= 2

"""Grouped PageRank: all system variants against the reference."""

import pytest

from repro.baselines.inner_parallel import group_locally
from repro.data import grouped_edges
from repro.tasks import pagerank as pr

ITERS = 5


@pytest.fixture(scope="module")
def records():
    return grouped_edges(num_groups=3, total_edges=120, seed=5)


@pytest.fixture(scope="module")
def groups(records):
    return group_locally(records)


@pytest.fixture(scope="module")
def truth(groups):
    return {
        gid: pr.pagerank_reference(groups[gid], iterations=ITERS)[0]
        for gid in groups
    }


def ranks_close(a, b):
    return set(a) == set(b) and all(
        abs(a[v] - b[v]) < 1e-9 for v in a
    )


class TestReference:
    def test_rank_mass_bounded(self, truth):
        # Dangling vertices leak rank mass (no redistribution, by
        # design, consistently across all implementations), so the sum
        # is at most 1 and stays well above zero.
        for ranks in truth.values():
            assert 0.3 < sum(ranks.values()) <= 1.0 + 1e-9

    def test_two_node_cycle_is_symmetric(self):
        ranks, _iters, _work = pr.pagerank_reference(
            [(0, 1), (1, 0)], iterations=10
        )
        assert ranks[0] == pytest.approx(ranks[1])

    def test_sink_heavy_vertex_ranks_higher(self):
        ranks, _i, _w = pr.pagerank_reference(
            [(0, 2), (1, 2), (2, 0)], iterations=20
        )
        assert ranks[2] > ranks[1]

    def test_convergence_stops_early(self):
        _r, iters, _w = pr.pagerank_reference(
            [(0, 1), (1, 0)], iterations=50, tolerance=1e-6
        )
        assert iters < 50


class TestVariantsAgree:
    def test_parallel_matches_reference(self, ctx, groups, truth):
        gid = sorted(groups)[0]
        got = pr.pagerank_parallel(ctx, groups[gid], iterations=ITERS)
        assert ranks_close(got, truth[gid])

    def test_nested_matches_reference(self, ctx, records, truth):
        nested = pr.pagerank_nested(
            ctx.bag_of(records), iterations=ITERS
        )
        got = {}
        for gid, (vertex, rank) in nested.collect():
            got.setdefault(gid, {})[vertex] = rank
        assert all(ranks_close(got[gid], truth[gid]) for gid in truth)

    def test_outer_matches_reference(self, ctx, records, truth):
        got = {
            gid: dict(ranks)
            for gid, ranks in pr.pagerank_outer(
                ctx.bag_of(records), iterations=ITERS
            ).collect()
        }
        assert all(ranks_close(got[gid], truth[gid]) for gid in truth)

    def test_inner_matches_reference(self, ctx, groups, truth):
        got = dict(
            pr.pagerank_inner(ctx, groups, iterations=ITERS)
        )
        assert all(ranks_close(got[gid], truth[gid]) for gid in truth)


class TestConvergentNested:
    def test_tolerance_exits_match_reference(self, ctx, records,
                                             groups):
        truth = {
            gid: pr.pagerank_reference(
                groups[gid], iterations=40, tolerance=1e-4
            )
            for gid in groups
        }
        nested = pr.pagerank_nested(
            ctx.bag_of(records), iterations=40, tolerance=1e-4
        )
        got = {}
        for gid, (vertex, rank) in nested.collect():
            got.setdefault(gid, {})[vertex] = rank
        assert all(
            ranks_close(got[gid], truth[gid][0]) for gid in truth
        )
        # Different groups converge at different iterations, exercising
        # the lifted loop's per-tag exits.
        assert len({truth[gid][1] for gid in truth}) >= 2


class TestClosureInitialization:
    def test_init_weight_is_one_over_group_vertex_count(self, ctx):
        """Sec. 5.1's example: initWeight = 1/count used inside a map."""
        records = [("g1", (0, 1)), ("g1", (1, 0)), ("g2", (0, 1)),
                   ("g2", (1, 2)), ("g2", (2, 0))]
        nested = pr.pagerank_nested(ctx.bag_of(records), iterations=1)
        got = {}
        for gid, (vertex, rank) in nested.collect():
            got.setdefault(gid, {})[vertex] = rank
        # One damping iteration from uniform 1/n: by symmetry of the
        # 2-cycle, g1 stays uniform at 1/2.
        assert got["g1"][0] == pytest.approx(got["g1"][1])


class TestJobScaling:
    def test_nested_jobs_independent_of_group_count(self, ctx):
        job_counts = []
        for num_groups in (2, 8):
            ctx.reset_trace()
            records = grouped_edges(num_groups, 80, seed=2)
            pr.pagerank_nested(
                ctx.bag_of(records), iterations=3
            ).collect()
            job_counts.append(ctx.trace.num_jobs)
        assert job_counts[0] == job_counts[1]

"""Matrix-as-nested-collection operations (paper Sec. 1 example)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import EngineContext, laptop_config
from repro.tasks import matrix as mx

ROWS = [
    [1.0, 2.0, 2.0],
    [0.0, 0.0, 0.0],
    [3.0, 4.0, 0.0],
]


@pytest.fixture
def entries(ctx):
    return mx.matrix_bag(ctx, ROWS)


class TestRowAggregates:
    def test_row_sums(self, entries):
        assert mx.row_sums(entries).collect_as_map() == {
            0: 5.0, 1: 0.0, 2: 7.0,
        }

    def test_row_norms(self, entries):
        norms = mx.row_norms(entries).collect_as_map()
        assert norms[0] == pytest.approx(3.0)
        assert norms[1] == pytest.approx(0.0)
        assert norms[2] == pytest.approx(5.0)

    def test_frobenius(self, entries):
        expected = math.sqrt(sum(v * v for row in ROWS for v in row))
        assert mx.frobenius_norm(entries) == pytest.approx(expected)


class TestNormalizeRows:
    def test_matches_reference(self, ctx, entries):
        expected = mx.normalize_rows_reference(ROWS)
        got = {}
        for i, (j, value) in mx.normalize_rows(entries).collect():
            got.setdefault(i, {})[j] = value
        for i, row in enumerate(expected):
            for j, value in enumerate(row):
                assert got[i][j] == pytest.approx(value)

    def test_normalized_rows_have_unit_norm(self, ctx, entries):
        normalized = mx.normalize_rows(entries)
        norms = mx.row_norms(normalized).collect_as_map()
        assert norms[0] == pytest.approx(1.0)
        assert norms[1] == pytest.approx(0.0)  # zero row stays zero
        assert norms[2] == pytest.approx(1.0)


class TestMatrixVector:
    def test_matches_reference(self, ctx, entries):
        vector = [2.0, -1.0, 0.5]
        vector_bag = ctx.bag_of(list(enumerate(vector)))
        got = mx.matrix_vector_product(
            entries, vector_bag
        ).collect_as_map()
        expected = mx.matrix_vector_reference(ROWS, vector)
        assert set(got) == set(expected)
        for i in expected:
            assert got[i] == pytest.approx(expected[i])


@settings(max_examples=20, deadline=None)
@given(
    rows=st.lists(
        st.lists(
            st.floats(
                min_value=-10, max_value=10,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=3,
            max_size=3,
        ),
        min_size=1,
        max_size=6,
    )
)
def test_row_sums_property(rows):
    ctx = EngineContext(laptop_config())
    got = mx.row_sums(mx.matrix_bag(ctx, rows)).collect_as_map()
    expected = mx.row_sums_reference(rows)
    assert set(got) == set(expected)
    for i in expected:
        assert got[i] == pytest.approx(expected[i])


@settings(max_examples=15, deadline=None)
@given(
    rows=st.lists(
        st.lists(
            st.floats(
                min_value=-5, max_value=5,
                allow_nan=False, allow_infinity=False,
            ),
            min_size=2,
            max_size=2,
        ),
        min_size=1,
        max_size=5,
    ),
    vector=st.lists(
        st.floats(
            min_value=-5, max_value=5,
            allow_nan=False, allow_infinity=False,
        ),
        min_size=2,
        max_size=2,
    ),
)
def test_matrix_vector_property(rows, vector):
    ctx = EngineContext(laptop_config())
    got = mx.matrix_vector_product(
        mx.matrix_bag(ctx, rows), ctx.bag_of(list(enumerate(vector)))
    ).collect_as_map()
    expected = mx.matrix_vector_reference(rows, vector)
    for i in expected:
        assert got.get(i, 0.0) == pytest.approx(expected[i])

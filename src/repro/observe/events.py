"""The trace event schema: what one observed fact looks like.

A :class:`TraceEvent` is either a *span* (it has a duration: a job, a
stage dispatch, a task attempt, a serde pass) or an *instant* (duration
``None``: a shuffle completing, a retry, a straggler flag, a fault).
Events carry no references into the engine -- only strings, numbers and
a flat ``args`` dict -- so every sink can persist them and every
exporter can render them without importing engine internals.

Granularity contract: events are emitted **per task, per stage, per
job** -- never per record.  The hot per-record loops of the engine are
invisible to this module by design; tracing overhead is bounded by the
task count, not the data size.

Timestamps are wall-clock epoch seconds (``time.time()``): the one
clock the driver and its worker processes share on a machine, which is
what lets worker-side events be re-anchored onto the driver timeline
(see :mod:`repro.engine.runtime.task`).
"""

#: Every event kind the engine emits, driver side and worker side.
#: Exporters key colors/lanes off these; the JSON-lines sink round-trips
#: them verbatim.
KIND_DRIVER = "driver"          # one action call on the driver
KIND_JOB = "job"                # one scheduled job (collect/count/...)
KIND_STAGE = "stage"            # one dispatched stage (task set + retries)
KIND_TASK_SET = "task_set"      # one wave of attempts sent to the backend
KIND_TASK = "task"              # one task attempt (worker- or driver-run)
KIND_SHUFFLE = "shuffle"        # a completed hash shuffle (instant)
KIND_BROADCAST = "broadcast"    # a broadcast payload shipped (instant)
KIND_SERDE = "serde"            # closure/outcome (de)serialization span
KIND_TASK_RETRY = "task_retry"  # scheduler re-launched a failed attempt
KIND_FAULT = "fault"            # a task attempt failed (instant)
KIND_STRAGGLER = "straggler"    # a task ran far beyond its set's median
#: A re-execution (retry or speculation) touched a task whose UDFs the
#: effect analysis could not prove deterministic -- the repeated run may
#: legitimately observe a different result.
KIND_NONDETERMINISTIC_RETRY = "nondeterministic_retry"
KIND_SPECULATION = "speculation"  # a proven-safe straggler re-dispatch
#: One fused chain compiled to a specialized loop function (span
#: covering source generation + ``compile``; emitted once per distinct
#: chain fingerprint per process, never per task or per record).
KIND_CODEGEN = "codegen"

ALL_KINDS = (
    KIND_DRIVER,
    KIND_JOB,
    KIND_STAGE,
    KIND_TASK_SET,
    KIND_TASK,
    KIND_SHUFFLE,
    KIND_BROADCAST,
    KIND_SERDE,
    KIND_TASK_RETRY,
    KIND_FAULT,
    KIND_STRAGGLER,
    KIND_NONDETERMINISTIC_RETRY,
    KIND_SPECULATION,
    KIND_CODEGEN,
)

#: Kinds that form the span hierarchy (everything else is an instant or
#: an auxiliary span).  Parity tests compare the shape of this subset.
SPAN_KINDS = (KIND_DRIVER, KIND_JOB, KIND_STAGE, KIND_TASK_SET, KIND_TASK)

#: The lane driver-side events live on.
DRIVER_LANE = "driver"


def worker_lane(pid):
    """Lane name for events that ran in worker process ``pid``."""
    return "worker-%d" % pid


def gather_lane(slot):
    """Lane for driver/job spans submitted from ``ctx.gather`` slot.

    Concurrently submitted jobs each get their own driver-side lane so
    their driver > job span nesting stays well-formed per lane instead
    of interleaving on :data:`DRIVER_LANE`.
    """
    return "driver-%s" % slot


def scheduler_lane(slot):
    """Lane name for events emitted from DAG dispatch thread ``slot``.

    The DAG scheduler (:mod:`repro.engine.dag`) dispatches concurrent
    stages from a pool of driver-side threads; giving each thread its
    own lane keeps concurrently open stage spans from garbling each
    other's nesting on the driver lane.
    """
    return "sched-%s" % slot


class TraceEvent:
    """One observed fact: a span (``dur`` set) or an instant (``dur=None``).

    Attributes:
        name: Human-readable identity, e.g. ``"stage#2:ReduceByKey"``.
        kind: One of :data:`ALL_KINDS`.
        ts: Start time, epoch seconds.
        dur: Duration in seconds, or ``None`` for instants.
        lane: Where it happened: :data:`DRIVER_LANE` or ``worker-<pid>``.
        args: Flat JSON-serializable payload (record counts, partition
            indices, error types, ...).
    """

    __slots__ = ("name", "kind", "ts", "dur", "lane", "args")

    def __init__(self, name, kind, ts, dur=None, lane=DRIVER_LANE,
                 args=None):
        self.name = name
        self.kind = kind
        self.ts = ts
        self.dur = dur
        self.lane = lane
        self.args = args if args is not None else {}

    @property
    def is_span(self):
        return self.dur is not None

    @property
    def end(self):
        return self.ts if self.dur is None else self.ts + self.dur

    def to_dict(self):
        """The event as a flat JSON-serializable dict."""
        record = {
            "name": self.name,
            "kind": self.kind,
            "ts": self.ts,
            "lane": self.lane,
        }
        if self.dur is not None:
            record["dur"] = self.dur
        if self.args:
            record["args"] = self.args
        return record

    @classmethod
    def from_dict(cls, record):
        return cls(
            name=record["name"],
            kind=record["kind"],
            ts=record["ts"],
            dur=record.get("dur"),
            lane=record.get("lane", DRIVER_LANE),
            args=record.get("args") or {},
        )

    def __eq__(self, other):
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (
            self.name == other.name
            and self.kind == other.kind
            and self.ts == other.ts
            and self.dur == other.dur
            and self.lane == other.lane
            and self.args == other.args
        )

    def __repr__(self):
        shape = (
            "dur=%.6f" % self.dur if self.dur is not None else "instant"
        )
        return "TraceEvent(%r, %s, ts=%.6f, %s, lane=%s)" % (
            self.name, self.kind, self.ts, shape, self.lane,
        )

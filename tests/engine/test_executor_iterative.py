"""The iterative, stack-safe evaluator and its fused narrow pipelines.

The executor must evaluate arbitrarily deep lineage chains -- the shape
loop-unrolled control flow produces -- without recursion, without
touching the interpreter's recursion limit, and with exactly the trace
accounting the per-operator evaluation produced.
"""

import sys

import pytest

from repro.engine import laptop_config

DEEP = 20_000


@pytest.fixture
def config():
    # Several tests here count UDF calls through driver-side list
    # appends, which only works when tasks run in this process -- pin
    # the serial backend so a $REPRO_BACKEND=process suite run cannot
    # break them.
    return laptop_config(backend="serial")


class TestStackSafety:
    def test_20k_map_lineage_counts_without_recursion_error(self, ctx):
        bag = ctx.bag_of(range(50))
        for _ in range(DEEP):
            bag = bag.map(lambda x: x + 1)
        limit_before = sys.getrecursionlimit()
        assert bag.count() == 50
        assert sys.getrecursionlimit() == limit_before

    def test_deep_lineage_result_is_correct(self, ctx):
        bag = ctx.bag_of(range(10))
        for _ in range(DEEP):
            bag = bag.map(lambda x: x + 1)
        assert sorted(bag.collect()) == [i + DEEP for i in range(10)]

    def test_deep_lineage_survives_a_tight_recursion_limit(self, ctx):
        # Stack safety must come from the iterative evaluator, not from a
        # generous interpreter default.
        bag = ctx.bag_of(range(5))
        for _ in range(5_000):
            bag = bag.map(lambda x: x)
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(900)
        try:
            assert bag.count() == 5
        finally:
            sys.setrecursionlimit(limit)

    def test_deep_mixed_chain_through_a_shuffle(self, ctx):
        bag = ctx.bag_of(range(40))
        for i in range(2_000):
            if i % 3 == 2:
                bag = bag.filter(lambda x: True)
            else:
                bag = bag.map(lambda x: x)
        total = bag.map(lambda x: (x % 4, 1)).reduce_by_key(
            lambda a, b: a + b
        ).collect()
        assert sorted(total) == [(0, 10), (1, 10), (2, 10), (3, 10)]

    def test_plain_while_loop_unrolls_deep_lineage(self, ctx):
        # A loop-unrolled plain while loop (repro.core.control_flow)
        # builds one map per iteration on an uncached bag -- the lineage
        # shape that used to exhaust the recursion limit.
        from repro.core.control_flow import while_loop

        state = {"bag": ctx.bag_of(range(4)), "i": 0}
        state = while_loop(
            state,
            lambda s: s["i"] < 6_000,
            lambda s: {
                "bag": s["bag"].map(lambda x: x + 1),
                "i": s["i"] + 1,
            },
        )
        assert sorted(state["bag"].collect()) == [
            i + 6_000 for i in range(4)
        ]

    def test_recursion_limit_never_raised_by_engine_import(self):
        import repro.engine.executor as executor_module

        source = open(executor_module.__file__).read()
        assert "setrecursionlimit" not in source


class TestFusedPipelines:
    def test_fused_chain_matches_per_operator_results(self, ctx):
        got = (
            ctx.bag_of(range(20))
            .map(lambda x: x * 2)
            .filter(lambda x: x % 3 != 0)
            .flat_map(lambda x: [x, -x])
            .map(lambda x: x + 1)
            .collect()
        )
        expected = []
        for x in range(20):
            y = x * 2
            if y % 3 != 0:
                expected.extend([y + 1, -y + 1])
        assert sorted(got) == sorted(expected)

    def test_fused_chain_is_one_stage_with_per_operator_counts(self, ctx):
        n = 24
        bag = ctx.bag_of(range(n), num_partitions=4)
        bag.map(lambda x: x).filter(
            lambda x: x % 2 == 0
        ).map(lambda x: x).collect()
        job = ctx.trace.jobs[-1]
        assert len(job.stages) == 1
        # parallelize(n) + map input(n) + filter input(n) + second map
        # input(n/2): identical to unfused per-operator accounting.
        assert job.stages[0].total_records == n + n + n + n // 2

    def test_flat_map_credits_downstream_expansion(self, ctx):
        n = 10
        bag = ctx.bag_of(range(n), num_partitions=2)
        bag.flat_map(lambda x: [x, x, x]).map(lambda x: x).collect()
        job = ctx.trace.jobs[-1]
        # parallelize(n) + flat_map input(n) + map input(3n).
        assert job.stages[0].total_records == n + n + 3 * n

    def test_weighted_work_charged_once_per_operator(self, ctx):
        from repro.engine import Weighted

        n = 16
        work = 5
        bag = ctx.bag_of(range(n), num_partitions=4)
        bag.map(lambda x: Weighted(x, work)).collect()
        job = ctx.trace.jobs[-1]
        factor = ctx.config.sequential_work_factor
        per_partition = n // 4
        expected = n + n + 4 * int(per_partition * work * factor)
        assert job.stages[0].total_records == expected

    def test_shared_node_evaluated_once(self, ctx):
        calls = []

        def tracked(x):
            calls.append(x)
            return x

        base = ctx.bag_of(range(8)).map(tracked)
        left = base.map(lambda x: ("l", x))
        right = base.map(lambda x: ("r", x))
        merged = left.union(right).collect()
        assert len(merged) == 16
        # The shared map ran once per record, not once per consumer.
        assert len(calls) == 8

    def test_shared_node_accounting_not_duplicated(self, ctx):
        n = 12
        base = ctx.bag_of(range(n), num_partitions=3).map(lambda x: x)
        left = base.map(lambda x: x)
        right = base.map(lambda x: x)
        left.union(right).collect()
        job = ctx.trace.jobs[-1]
        input_stage = job.stages[0]
        # parallelize(n) + shared map(n) + two consumers(n each).
        assert input_stage.total_records == 4 * n

    def test_cache_boundary_stops_fusion(self, ctx):
        upstream_calls = []

        def upstream(x):
            upstream_calls.append(x)
            return x + 1

        cached = ctx.bag_of(range(6)).map(upstream).cache()
        first = cached.map(lambda x: x * 10).collect()
        second = cached.map(lambda x: x * 100).collect()
        assert sorted(first) == [10 * (i + 1) for i in range(6)]
        assert sorted(second) == [100 * (i + 1) for i in range(6)]
        # The cached prefix ran once; the second job read materialized
        # partitions through a "cached" stage.
        assert len(upstream_calls) == 6
        kinds = [stage.kind for stage in ctx.trace.jobs[-1].stages]
        assert kinds[0] == "cached"

    def test_udf_errors_still_attributed(self, ctx):
        from repro.errors import UdfError

        bag = ctx.bag_of([1, 0]).map(lambda x: 1 // x)
        with pytest.raises(UdfError):
            bag.collect()


class TestEvaluationOrder:
    def test_trace_stage_order_unchanged(self, ctx):
        bag = ctx.bag_of([(1, 1), (2, 2)])
        bag.map(lambda kv: kv).reduce_by_key(lambda a, b: a + b).collect()
        kinds = [stage.kind for stage in ctx.trace.jobs[-1].stages]
        assert kinds == ["input", "shuffle"]

    def test_broadcast_build_side_evaluated_first(self, ctx):
        order = []
        left = ctx.bag_of([("a", 1)]).map(
            lambda kv: order.append("left") or kv
        )
        right = ctx.bag_of([("a", 2)]).map(
            lambda kv: order.append("right") or kv
        )
        left.join(right, strategy="broadcast").collect()
        assert order == ["right", "left"]

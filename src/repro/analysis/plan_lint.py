"""NPL3xx / NPL4xx: lint over :mod:`repro.engine.plan` DAGs.

All checks run pre-execution (the point is to predict the failure or
the waste *before* the job runs):

* **NPL301** -- a node consumed by two or more parents without
  ``cache()``: lineage recomputes it once per consumer.
* **NPL302** -- a filter applied above a shuffle whose predicate
  provably reads only the key: pushing it below the shuffle would cut
  shuffle volume.  The predicate proof is best-effort source analysis
  (a lambda reading only ``kv[0]``); anything unprovable is silent.
* **NPL303** -- a broadcast join / cross whose build side's statically
  known size exceeds the executor memory bound: the exact condition
  the engine's :func:`~repro.engine.broadcast.check_broadcast_fits`
  raises :class:`~repro.errors.SimulatedOutOfMemory` for at runtime,
  predicted at plan-build time.
* **NPL304** -- a coalesce immediately re-coalesced: the inner coalesce
  does no enduring work.  (Shuffle-over-same-partitioning, NPL304's
  former second case, is now NPL401: property inference proves it and
  the engine elides it.)
* **NPL203** -- driver-provided keyed records whose key type would hash
  through the partitioner's ``repr()`` fallback, which is not
  guaranteed process-stable.
* **NPL401** -- a shuffle (or a cogroup side) whose input is provably
  already partitioned in the layout the shuffle would build; the
  engine elides it (see :mod:`repro.engine.optimize`).  Reported so
  the saving is visible at lint time.
* **NPL402** -- a key-rewriting map that destroys a provable
  co-partitioning right before a shuffle that could otherwise have
  been elided.
* **NPL403** -- a shuffle input that *is* hash-partitioned, but into a
  different partition count, forcing a full reshuffle.
* **NPL404** -- a shuffle input whose map could not be *proven*
  key-preserving; a ``preserves_partitioning=True`` hint (if truthful)
  would enable elision.
* **NPL504** -- only with ``config.optimize_caching`` on: an uncached
  reused subtree the auto-cache rewrite *declined* because its effect
  verdicts (:mod:`repro.analysis.effects`) are not proven pure and
  deterministic.  When the rewrite does fire, the NPL301 for that node
  is suppressed -- the optimizer has already solved it.
* **NPL6xx** -- record schema & shape findings from
  :mod:`repro.analysis.schema` (key-type mismatches, union shape
  mismatches, unhashable shuffle keys, refuted-columnar chains);
  NPL604 only fires with ``config.compile_pipelines`` on, and NPL001
  skip notices only with ``config.schema_inference`` on.

NPL4xx findings come from :mod:`repro.analysis.properties`.
Diagnostics carry the node's stable id (see
:func:`repro.engine.plan.assign_node_ids`), so a finding can be matched
by eye against ``Bag.explain()`` / ``explain_compact``.
"""

import ast

from ..engine import plan as p
from ..engine.partitioner import unstable_key_reason
from .diagnostics import make_diagnostic
from .properties import HASH, NONE, function_ast, infer_properties

_WIDE = (p.ReduceByKey, p.GroupByKey, p.CoGroup)

#: How many driver-side records NPL203 samples per Parallelize node.
_KEY_SAMPLE = 8


def analyze_plan(root, config=None):
    """Lint one plan DAG; returns a list of Diagnostics.

    Args:
        root: The root :class:`~repro.engine.plan.PlanNode` (e.g.
            ``bag.node``).
        config: The :class:`~repro.engine.config.ClusterConfig` whose
            memory bounds the NPL303 prediction uses; without one the
            memory check is skipped.
    """
    ids = p.assign_node_ids(root)
    parts = p.partition_counts(root)
    consumers = _consumer_counts(root)
    props = infer_properties(root)
    has_wide = any(
        isinstance(node, _WIDE) for node in p.iter_nodes(root)
    )
    effects = None
    if config is not None and getattr(config, "optimize_caching", False):
        from .effects import plan_effects

        effects = plan_effects(root)
    diags = []

    def ref(node):
        return p.describe_node(node, ids, parts)

    for node in p.iter_nodes_ordered(root):
        _check_uncached_reuse(node, consumers, effects, ref, diags)
        _check_filter_pushdown(node, ref, diags)
        if config is not None:
            _check_broadcast_size(node, config, ref, diags)
        _check_redundant_repartition(node, ref, diags)
        _check_partitioning(node, props, ref, diags)
        if has_wide:
            _check_unstable_keys(node, ref, diags)
    from .schema import schema_diagnostics

    diags.extend(schema_diagnostics(root, config))
    return diags


def analyze_bag(bag):
    """Convenience wrapper: lint a Bag against its context's config."""
    return analyze_plan(bag.node, bag.context.config)


# ---------------------------------------------------------------------------
# individual checks
# ---------------------------------------------------------------------------


def _consumer_counts(root):
    """How many parent edges reference each node (``CoGroup(x, x)`` = 2)."""
    counts = {}
    for node in p.iter_nodes_ordered(root):
        for child in node.children:
            counts[id(child)] = counts.get(id(child), 0) + 1
    return counts


def _check_uncached_reuse(node, consumers, effects, ref, diags):
    uses = consumers.get(id(node), 0)
    if uses < 2 or node.cached:
        return
    if isinstance(node, p.Parallelize):
        # Driver-side data re-splits cheaply; no lineage recompute.
        return
    if effects is not None and not isinstance(node, p.Union):
        # optimize_caching is on: when the subtree is proven pure and
        # deterministic the auto-cache rewrite inserts the cache()
        # itself, so NPL301 would nag about a solved problem.  An
        # unproven subtree keeps NPL301 (the waste is real) and gains
        # NPL504 explaining why the rewrite held back.
        report = effects.get(id(node))
        if (
            report is not None
            and report.pure is True
            and report.deterministic is True
        ):
            return
        diags.append(
            make_diagnostic(
                "NPL504",
                "%s is reused %d times and auto-caching is enabled, "
                "but its subtree could not be proven pure and "
                "deterministic, so the optimizer will not cache() it "
                "for you" % (ref(node), uses),
                node=ref(node),
            )
        )
    diags.append(
        make_diagnostic(
            "NPL301",
            "%s is consumed %d times without cache(); lineage will "
            "recompute it once per consumer -- call .cache() on the "
            "shared bag" % (ref(node), uses),
            node=ref(node),
        )
    )


def _check_filter_pushdown(node, ref, diags):
    if not isinstance(node, p.Filter):
        return
    child = node.child
    if not isinstance(child, _WIDE):
        return
    if _reads_only_key(node.fn) is not True:
        return
    diags.append(
        make_diagnostic(
            "NPL302",
            "%s reads only the key of %s's output; filtering before "
            "the shuffle would drop those records from the shuffle "
            "instead of after it" % (ref(node), ref(child)),
            node=ref(node),
        )
    )


def _check_broadcast_size(node, config, ref, diags):
    if isinstance(node, p.BroadcastJoin):
        build = node.right
    elif isinstance(node, p.CrossBroadcast):
        build = node.right if node.broadcast_side == "right" else node.left
    else:
        return
    count = p.static_record_count(build)
    if count is None:
        return
    record_bytes = (
        config.result_record_bytes if build.meta
        else config.bytes_per_record
    )
    needed = config.materialized_bytes(count, record_bytes)
    limit = min(
        config.executor_memory_limit_bytes, config.driver_memory_bytes
    )
    if needed <= limit:
        return
    diags.append(
        make_diagnostic(
            "NPL303",
            "%s broadcasts %s (%d records, ~%d bytes materialized) "
            "but the executor memory bound is %d bytes: the engine "
            "will raise SimulatedOutOfMemory at execution -- use a "
            "repartition join" % (ref(node), ref(build), count, needed,
                                  limit),
            node=ref(node),
        )
    )


def _check_redundant_repartition(node, ref, diags):
    # The wide-above-wide case this check used to flag is strictly
    # subsumed by NPL401 (property inference proves the layout reuse
    # and the engine elides the shuffle); only the coalesce-of-coalesce
    # case remains here, so one plan defect yields one diagnostic.
    if isinstance(node, p.Coalesce) and isinstance(node.child, p.Coalesce):
        diags.append(
            make_diagnostic(
                "NPL304",
                "%s immediately re-coalesces %s; the inner coalesce "
                "does no enduring work -- coalesce once to the final "
                "partition count" % (ref(node), ref(node.child)),
                node=ref(node),
            )
        )


def _wide_input_sides(node, props):
    """(side_name, Partitioning) for each shuffled input of a wide node."""
    if isinstance(node, p.CoGroup):
        return (
            ("left", props.partitioning_of(node.left)),
            ("right", props.partitioning_of(node.right)),
        )
    return (("input", props.partitioning_of(node.child)),)


def _check_partitioning(node, props, ref, diags):
    """NPL401-404: partitioning-property findings for one wide node."""
    if not isinstance(node, _WIDE):
        return
    elision = props.elisions.get(id(node))
    if elision is not None:
        if elision.choice == "elide":
            what = (
                "%s re-shuffles data already partitioned by %s into "
                "%d partitions; the engine elides this shuffle (no "
                "records move)"
                % (ref(node), ref(elision.origin), node.num_partitions)
            )
        elif elision.choice == "elide-both":
            what = (
                "both inputs of %s already share the layout of %s; "
                "the engine elides the shuffle entirely"
                % (ref(node), ref(elision.origin))
            )
        else:
            side = "left" if elision.choice == "adopt-left" else "right"
            what = (
                "the %s input of %s already has the layout of %s; the "
                "engine keeps it in place and shuffles only the other "
                "side" % (side, ref(node), ref(elision.origin))
            )
        diags.append(make_diagnostic("NPL401", what, node=ref(node)))
    for side, partitioning in _wide_input_sides(node, props):
        if (
            partitioning.kind == HASH
            and partitioning.num_partitions != node.num_partitions
        ):
            diags.append(
                make_diagnostic(
                    "NPL403",
                    "the %s input of %s is hash-partitioned into %d "
                    "partitions but %s shuffles into %d; the count "
                    "mismatch forces a full reshuffle -- align the "
                    "partition counts to enable elision"
                    % (side, ref(node), partitioning.num_partitions,
                       ref(node), node.num_partitions),
                    node=ref(node),
                )
            )
            continue
        if partitioning.kind != NONE or partitioning.lost is None:
            continue
        lost = partitioning.lost
        if lost.num_partitions != node.num_partitions:
            continue
        blame = partitioning.blame
        if partitioning.reason == "rewrites-key":
            diags.append(
                make_diagnostic(
                    "NPL402",
                    "%s rewrites the key slot and destroys the "
                    "co-partitioning of %s right before %s, which "
                    "could otherwise elide its shuffle"
                    % (ref(blame), ref(lost.origin), ref(node)),
                    node=ref(blame),
                )
            )
        elif partitioning.reason == "unproven":
            diags.append(
                make_diagnostic(
                    "NPL404",
                    "%s could not be proven key-preserving, so %s "
                    "cannot reuse the layout of %s; if the UDF never "
                    "rewrites the key, pass preserves_partitioning="
                    "True to enable shuffle elision"
                    % (ref(blame), ref(node), ref(lost.origin)),
                    node=ref(blame),
                )
            )


def _check_unstable_keys(node, ref, diags):
    """NPL203: driver data whose keys hash via the repr() fallback."""
    if not isinstance(node, p.Parallelize):
        return
    for record in node.data[:_KEY_SAMPLE]:
        if not isinstance(record, tuple) or len(record) != 2:
            continue
        reason = unstable_key_reason(record[0])
        if reason is not None:
            diags.append(
                make_diagnostic(
                    "NPL203",
                    "%s feeds a shuffle with keys that are not "
                    "canonically hashable: %s -- use primitives or "
                    "tuples of primitives as shuffle keys"
                    % (ref(node), reason),
                    node=ref(node),
                )
            )
            return


# ---------------------------------------------------------------------------
# predicate analysis for NPL302
# ---------------------------------------------------------------------------


def _reads_only_key(fn):
    """True / False / None(unknown): does ``fn(kv)`` read only ``kv[0]``?

    Best-effort: parses the predicate's source.  Multi-line lambdas,
    builtins, and functions without retrievable source return ``None``
    (the check stays silent rather than guessing).
    """
    lambda_node = _predicate_ast(fn)
    if lambda_node is None:
        return None
    args = lambda_node.args
    if len(args.args) != 1 or args.vararg or args.kwarg or args.kwonlyargs:
        return None
    param = args.args[0].arg
    body = (
        lambda_node.body
        if isinstance(lambda_node, ast.Lambda)
        else lambda_node
    )
    uses = []
    key_uses = set()
    for node in ast.walk(body):
        if isinstance(node, ast.Name) and node.id == param:
            uses.append(node)
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == param
            and isinstance(node.slice, ast.Constant)
            and node.slice.value == 0
        ):
            key_uses.add(id(node.value))
    if not uses:
        return None
    return all(id(use) in key_uses for use in uses)


def _predicate_ast(fn):
    """The predicate's Lambda/FunctionDef AST node, or None.

    Delegates to :func:`repro.analysis.properties.function_ast`, which
    also handles lambda sources that are not valid standalone
    statements (e.g. a lambda on a method's ``return`` line) and
    disambiguates multiple candidates by name/arity.
    """
    return function_ast(fn)

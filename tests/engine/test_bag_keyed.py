"""Keyed (shuffling) Bag operations."""

from collections import Counter

import pytest

from repro.errors import PlanError


class TestReduceByKey:
    def test_sums_per_key(self, ctx):
        bag = ctx.bag_of([("a", 1), ("b", 2), ("a", 3)])
        result = bag.reduce_by_key(lambda x, y: x + y).collect_as_map()
        assert result == {"a": 4, "b": 2}

    def test_single_value_keys_pass_through(self, ctx):
        bag = ctx.bag_of([("a", 7)])
        assert bag.reduce_by_key(max).collect() == [("a", 7)]

    def test_respects_custom_partition_count(self, ctx):
        bag = ctx.bag_of([("a", 1), ("b", 2)])
        reduced = bag.reduce_by_key(lambda x, y: x + y, num_partitions=2)
        assert reduced.num_partitions == 2
        assert reduced.collect_as_map() == {"a": 1, "b": 2}

    def test_non_keyed_records_rejected(self, ctx):
        bag = ctx.bag_of([1, 2, 3])
        with pytest.raises(PlanError):
            bag.reduce_by_key(lambda x, y: x + y).collect()

    def test_noncommutative_ordering_within_partition(self, ctx):
        # The reduce function must be associative; concatenation checks
        # that every value is folded exactly once.
        bag = ctx.bag_of([("k", "a"), ("k", "b"), ("k", "c")])
        folded = bag.reduce_by_key(lambda x, y: x + y).collect()[0][1]
        assert sorted(folded) == ["a", "b", "c"]


class TestGroupByKey:
    def test_groups_values(self, ctx):
        bag = ctx.bag_of([("a", 1), ("b", 2), ("a", 3)])
        groups = {
            k: sorted(v) for k, v in bag.group_by_key().collect()
        }
        assert groups == {"a": [1, 3], "b": [2]}

    def test_group_by_with_key_function(self, ctx):
        bag = ctx.bag_of(range(6))
        groups = {
            k: sorted(v)
            for k, v in bag.group_by(lambda x: x % 2).collect()
        }
        assert groups == {0: [0, 2, 4], 1: [1, 3, 5]}


class TestCountByStructure:
    def test_counts(self, ctx):
        bag = ctx.bag_of("aabbbc")
        counted = (
            bag.map(lambda ch: (ch, 1))
            .reduce_by_key(lambda x, y: x + y)
            .collect_as_map()
        )
        assert counted == {"a": 2, "b": 3, "c": 1}


class TestCoGroup:
    def test_cogroups_both_sides(self, ctx):
        left = ctx.bag_of([("a", 1), ("a", 2), ("b", 3)])
        right = ctx.bag_of([("a", "x"), ("c", "y")])
        result = {
            k: (sorted(l), sorted(r))
            for k, (l, r) in left.cogroup(right).collect()
        }
        assert result == {
            "a": ([1, 2], ["x"]),
            "b": ([3], []),
            "c": ([], ["y"]),
        }


class TestSubtractByKey:
    def test_removes_matching_keys(self, ctx):
        left = ctx.bag_of([("a", 1), ("b", 2), ("c", 3)])
        right = ctx.bag_of([("b", None)])
        assert sorted(left.subtract_by_key(right).collect()) == [
            ("a", 1), ("c", 3),
        ]

    def test_keeps_duplicates_of_surviving_keys(self, ctx):
        left = ctx.bag_of([("a", 1), ("a", 2)])
        right = ctx.bag_of([("b", 0)])
        assert Counter(left.subtract_by_key(right).collect()) == Counter(
            [("a", 1), ("a", 2)]
        )


class TestLeftOuterJoin:
    def test_unmatched_left_gets_none(self, ctx):
        left = ctx.bag_of([("a", 1), ("b", 2)])
        right = ctx.bag_of([("a", "x")])
        assert sorted(left.left_outer_join(right).collect()) == [
            ("a", (1, "x")), ("b", (2, None)),
        ]

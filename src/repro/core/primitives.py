"""The nesting primitives: InnerScalar, InnerBag, LiftingContext.

These are the primitives the parsing phase introduces (paper Sec. 4).
Inside a lifted UDF:

* every scalar becomes an :class:`InnerScalar` -- represented by a flat bag
  of ``(tag, value)`` pairs, one per original UDF invocation (Sec. 4.3);
* every bag becomes an :class:`InnerBag` -- represented by a flat bag of
  ``(tag, element)`` pairs holding the elements of *all* the original inner
  bags (Sec. 4.4).

Tags identify the original UDF invocations.  All InnerScalars in one lifted
UDF share the same tag set, whose size is known up front -- the
:class:`LiftingContext` carries it, and the optimizer exploits it
(Sec. 8.1).
"""

from ..engine.work import Weighted
from ..errors import FlatteningError
from .optimizer import Optimizer

_NO_DEFAULT = object()


def retag(tag, result):
    """Attach a tag to a UDF result, propagating work annotations.

    Lifted elementwise operations forward tags unchanged (Sec. 4.4); when
    the UDF reports sequential work via
    :class:`~repro.engine.work.Weighted`, the annotation must survive the
    tagging so the executor can credit it.
    """
    if isinstance(result, Weighted):
        return Weighted((tag, result.value), result.work)
    return (tag, result)


class LiftingContext:
    """Metadata for one lifted UDF (paper Sec. 8.1).

    Attributes:
        engine: The :class:`~repro.engine.context.EngineContext`.
        tags: A (cached) bag containing every tag exactly once.  Stored
            once per lifted UDF; operations producing output for empty
            inner bags (``count``) read it.
        num_tags: Number of tags == number of original UDF invocations ==
            the size of every InnerScalar in this context.
        optimizer: The runtime optimizer making Sec. 8 decisions.
        parent: Enclosing lifting context for multi-level nesting, or
            ``None`` at the outermost lifted level.
        tag_to_parent: Maps one of this context's tags to the enclosing
            context's tag (composite tags, paper Sec. 7).
    """

    def __init__(self, engine, tags, num_tags, optimizer=None, parent=None,
                 tag_to_parent=None):
        self.engine = engine
        self.tags = tags.as_meta().cache()
        self.num_tags = num_tags
        if optimizer is None:
            optimizer = Optimizer(engine)
        self.optimizer = optimizer
        self.parent = parent
        self.tag_to_parent = tag_to_parent

    @property
    def level(self):
        """Nesting depth: 1 for the outermost lifted UDF."""
        depth = 1
        ctx = self.parent
        while ctx is not None:
            depth += 1
            ctx = ctx.parent
        return depth

    def constant(self, value):
        """An InnerScalar holding ``value`` for every tag."""
        return InnerScalar(
            self, self.tags.map(lambda t: (t, value))
        )

    def scalars_from_pairs(self, pairs):
        """An InnerScalar from driver-side ``(tag, value)`` pairs."""
        bag = self.engine.bag_of(
            pairs, self.optimizer.scalar_partitions(self.num_tags)
        )
        return InnerScalar(self, bag)

    def derive(self, tags, num_tags):
        """A context over a subset of this context's tags (same level).

        Used by lifted control flow: after some original loops finish, the
        live tags shrink but remain at the same nesting level.
        """
        return LiftingContext(
            self.engine,
            tags,
            num_tags,
            optimizer=self.optimizer,
            parent=self.parent,
            tag_to_parent=self.tag_to_parent,
        )

    def sub_context(self, tags, num_tags, tag_to_parent):
        """A context one nesting level deeper (composite tags)."""
        return LiftingContext(
            self.engine,
            tags,
            num_tags,
            optimizer=self.optimizer,
            parent=self,
            tag_to_parent=tag_to_parent,
        )

    def __repr__(self):
        return "LiftingContext(num_tags=%d, level=%d)" % (
            self.num_tags, self.level,
        )


class _Lifted:
    """Shared plumbing for InnerScalar and InnerBag."""

    __slots__ = ("lctx", "repr")

    def __init__(self, lctx, repr_bag):
        self.lctx = lctx
        self.repr = repr_bag

    @property
    def engine(self):
        return self.lctx.engine

    @property
    def optimizer(self):
        return self.lctx.optimizer

    def _require_same_context(self, other):
        if other.lctx is not self.lctx:
            raise FlatteningError(
                "operands belong to different lifting contexts; their tag "
                "sets may differ (did a control-flow construct rebind one "
                "of them?)"
            )

    def with_context(self, lctx, repr_bag=None):
        """Rebind to another lifting context (used by lifted control flow).

        The caller guarantees the new context's tag set matches the
        representation's tags.
        """
        return type(self)(
            lctx, self.repr if repr_bag is None else repr_bag
        )

    def cache(self):
        self.repr.cache()
        return self

    def collect(self):
        """Driver-side ``(tag, ...)`` pairs (runs a job)."""
        return self.repr.collect()

    def to_bag(self):
        """The flat representation, as a plain engine bag."""
        return self.repr

    def __repr__(self):
        return "%s(num_tags=%d, level=%d)" % (
            type(self).__name__, self.lctx.num_tags, self.lctx.level,
        )


class InnerScalar(_Lifted):
    """A lifted scalar: one value per original UDF invocation (Sec. 4.3).

    Represented by a flat ``Bag[(T, S)]`` whose tags form a unique key.
    Arithmetic and comparison operators are overloaded, so UDF code like
    ``bounce_rate = num_bounces / num_visitors`` stages the corresponding
    ``binaryScalarOp`` automatically.
    """

    def __init__(self, lctx, repr_bag):
        # InnerScalar records are per-tag summaries, not data-scale
        # records; mark them so the cost model charges them accordingly.
        super().__init__(lctx, repr_bag.as_meta())

    # -- unaryScalarOp --------------------------------------------------

    def map(self, fn):
        """``unaryScalarOp``: apply ``fn`` to the value under each tag."""
        return InnerScalar(
            self.lctx, self.repr.map(lambda tv: (tv[0], fn(tv[1])))
        )

    # -- binaryScalarOp -------------------------------------------------

    def binary(self, other, fn):
        """``binaryScalarOp``: combine with another scalar, tag by tag.

        ``other`` may be an InnerScalar (equi-join on tags, Sec. 4.3) or a
        plain constant (no join needed).
        """
        if isinstance(other, InnerBag):
            raise FlatteningError(
                "scalar operation applied to an InnerBag; aggregate it "
                "first (e.g. .count() or .reduce())"
            )
        if not isinstance(other, InnerScalar):
            constant = other
            return self.map(lambda v: fn(v, constant))
        self._require_same_context(other)
        joined = self.optimizer.join_with_scalar(self.repr, other)
        return InnerScalar(
            self.lctx,
            joined.map(lambda record: (record[0], fn(*record[1]))),
        )

    # -- operator overloads (the staged scalar algebra) -----------------

    def __add__(self, other):
        return self.binary(other, lambda a, b: a + b)

    def __radd__(self, other):
        return self.binary(other, lambda a, b: b + a)

    def __sub__(self, other):
        return self.binary(other, lambda a, b: a - b)

    def __rsub__(self, other):
        return self.binary(other, lambda a, b: b - a)

    def __mul__(self, other):
        return self.binary(other, lambda a, b: a * b)

    def __rmul__(self, other):
        return self.binary(other, lambda a, b: b * a)

    def __truediv__(self, other):
        return self.binary(other, lambda a, b: a / b)

    def __rtruediv__(self, other):
        return self.binary(other, lambda a, b: b / a)

    def __floordiv__(self, other):
        return self.binary(other, lambda a, b: a // b)

    def __mod__(self, other):
        return self.binary(other, lambda a, b: a % b)

    def __pow__(self, other):
        return self.binary(other, lambda a, b: a ** b)

    def __neg__(self):
        return self.map(lambda a: -a)

    def __abs__(self):
        return self.map(abs)

    def __lt__(self, other):
        return self.binary(other, lambda a, b: a < b)

    def __le__(self, other):
        return self.binary(other, lambda a, b: a <= b)

    def __gt__(self, other):
        return self.binary(other, lambda a, b: a > b)

    def __ge__(self, other):
        return self.binary(other, lambda a, b: a >= b)

    def __eq__(self, other):
        return self.binary(other, lambda a, b: a == b)

    def __ne__(self, other):
        return self.binary(other, lambda a, b: a != b)

    __hash__ = object.__hash__

    def __and__(self, other):
        return self.binary(other, lambda a, b: bool(a) and bool(b))

    def __or__(self, other):
        return self.binary(other, lambda a, b: bool(a) or bool(b))

    def logical_not(self):
        return self.map(lambda a: not a)

    def __invert__(self):
        return self.logical_not()

    def __bool__(self):
        raise FlatteningError(
            "an InnerScalar has one boolean per tag and cannot collapse to "
            "a single Python bool; use while_loop/cond for lifted control "
            "flow"
        )

    # -- conversions -----------------------------------------------------

    def values(self):
        """A plain bag of the scalar values (tags dropped)."""
        return self.repr.values()

    def collect_values(self):
        return [value for _tag, value in self.collect()]

    def as_dict(self):
        """Driver-side ``{tag: value}`` (runs a job)."""
        return dict(self.collect())


class InnerBag(_Lifted):
    """A lifted bag: one inner bag per original UDF invocation (Sec. 4.4).

    Represented by a flat ``Bag[(T, E)]`` holding the elements of all the
    inner bags, tagged by invocation.  Its operations mirror the Bag API;
    each is the lifted version of the corresponding flat operation.
    """

    # -- stateless elementwise operations (tags forwarded, Sec. 4.4) ----

    def map(self, fn):
        return InnerBag(
            self.lctx, self.repr.map(lambda te: retag(te[0], fn(te[1])))
        )

    def filter(self, fn):
        return InnerBag(
            self.lctx, self.repr.filter(lambda te: fn(te[1]))
        )

    def flat_map(self, fn):
        return InnerBag(
            self.lctx,
            self.repr.flat_map(
                lambda te: [(te[0], item) for item in fn(te[1])]
            ),
        )

    def key_by(self, fn):
        return self.map(lambda x: (fn(x), x))

    def group_by(self, key_fn, num_partitions=None):
        """Lifted ``groupBy`` with a key UDF (paper Sec. 4.6 split)."""
        return self.key_by(key_fn).group_by_key(num_partitions)

    def map_values(self, fn):
        return self.map(lambda kv: (kv[0], fn(kv[1])))

    def keys(self):
        return self.map(lambda kv: kv[0])

    def values(self):
        return self.map(lambda kv: kv[1])

    def sample(self, fraction, seed=0):
        """Lifted Bernoulli sampling: each inner bag sampled at
        ``fraction`` (supports the dynamically-varying sample sizes of
        sampling-based hyperparameter search, paper Sec. 2.3)."""
        sampled = self.repr.sample(fraction, seed)
        return InnerBag(self.lctx, sampled)

    def sample_with_closure(self, fraction_scalar, seed=0):
        """Per-tag sample fractions from an InnerScalar.

        Lets different inner computations draw different sample sizes
        within one flat program.
        """
        from ..engine.partitioner import stable_hash

        modulus = 2 ** 32
        return self.filter_with_closure(
            fraction_scalar,
            lambda x, fraction: (
                stable_hash((seed, x)) % modulus
                < int(fraction * modulus)
            ),
        )

    # -- operations identical to their unlifted versions (Sec. 4.4) -----

    def distinct(self):
        """Per-tag distinct == distinct on the (tag, element) pairs."""
        return InnerBag(self.lctx, self.repr.distinct())

    def union(self, other):
        self._require_same_context(other)
        return InnerBag(self.lctx, self.repr.union(other.repr))

    # -- per-key stateful operations: composite (tag, key) keys ---------

    def reduce_by_key(self, fn, num_partitions=None):
        """Lifted ``reduceByKey``: rekey by ``(tag, key)`` (Sec. 4.4)."""
        rekeyed = self.repr.map(_to_composite_key)
        reduced = rekeyed.reduce_by_key(fn, num_partitions)
        return InnerBag(self.lctx, reduced.map(_from_composite_key))

    def group_by_key(self, num_partitions=None):
        rekeyed = self.repr.map(_to_composite_key)
        grouped = rekeyed.group_by_key(num_partitions)
        return InnerBag(self.lctx, grouped.map(_from_composite_key))

    def aggregate_by_key(self, zero, seq_fn, comb_fn,
                         num_partitions=None):
        """Lifted ``aggregateByKey`` via composite ``(tag, key)`` keys."""
        rekeyed = self.repr.map(_to_composite_key)
        aggregated = rekeyed.aggregate_by_key(
            zero, seq_fn, comb_fn, num_partitions
        )
        return InnerBag(self.lctx, aggregated.map(_from_composite_key))

    def count_by_key(self, num_partitions=None):
        """Lifted per-key counts within each inner bag."""
        rekeyed = self.repr.map(_to_composite_key)
        counted = rekeyed.count_by_key(num_partitions)
        return InnerBag(self.lctx, counted.map(_from_composite_key))

    def cogroup(self, other, num_partitions=None):
        """Lifted cogroup: per tag, per key, both sides' values."""
        self._require_same_context(other)
        left = self.repr.map(_to_composite_key)
        right = other.repr.map(_to_composite_key)
        cogrouped = left.cogroup(right, num_partitions)
        return InnerBag(self.lctx, cogrouped.map(_from_composite_key))

    def join(self, other, num_partitions=None):
        """Lifted equi-join: both sides rekeyed by ``(tag, key)``."""
        self._require_same_context(other)
        left = self.repr.map(_to_composite_key)
        right = other.repr.map(_to_composite_key)
        joined = left.join(right, num_partitions=num_partitions)
        return InnerBag(self.lctx, joined.map(_from_composite_key))

    def left_outer_join(self, other, num_partitions=None):
        self._require_same_context(other)
        left = self.repr.map(_to_composite_key)
        right = other.repr.map(_to_composite_key)
        joined = left.left_outer_join(right, num_partitions)
        return InnerBag(self.lctx, joined.map(_from_composite_key))

    def subtract_by_key(self, other, num_partitions=None):
        self._require_same_context(other)
        left = self.repr.map(_to_composite_key)
        right = other.repr.map(_to_composite_key)
        subtracted = left.subtract_by_key(right, num_partitions)
        return InnerBag(self.lctx, subtracted.map(_from_composite_key))

    # -- aggregations: per-tag state (Sec. 4.4) --------------------------

    def reduce(self, fn, default=_NO_DEFAULT):
        """Lifted ``reduce``: a reduceByKey keyed by the tag.

        Returns an :class:`InnerScalar`.  Tags whose inner bag is empty
        have no value unless ``default`` is given (the representation has
        no element for empty inner bags, Sec. 4.4).
        """
        partitions = self.optimizer.scalar_partitions(self.lctx.num_tags)
        reduced = self.repr.reduce_by_key(fn, partitions)
        if default is _NO_DEFAULT:
            return InnerScalar(self.lctx, reduced)
        return InnerScalar(
            self.lctx, _fill_missing_tags(self.lctx, reduced, default)
        )

    def count(self):
        """Lifted ``count``: 0 for empty inner bags (via the tags bag)."""
        partitions = self.optimizer.scalar_partitions(self.lctx.num_tags)
        ones = self.repr.map(lambda te: (te[0], 1))
        zeros = self.lctx.tags.map(lambda t: (t, 0))
        counted = ones.union(zeros).reduce_by_key(
            lambda a, b: a + b, partitions
        )
        return InnerScalar(self.lctx, counted)

    def sum(self):
        partitions = self.optimizer.scalar_partitions(self.lctx.num_tags)
        zeros = self.lctx.tags.map(lambda t: (t, 0))
        summed = self.repr.union(zeros).reduce_by_key(
            lambda a, b: a + b, partitions
        )
        return InnerScalar(self.lctx, summed)

    def min(self, key=None, default=_NO_DEFAULT):
        """Lifted minimum per inner bag -> InnerScalar."""
        rank = key if key is not None else _identity
        return self.reduce(
            lambda a, b: a if rank(a) <= rank(b) else b, default
        )

    def max(self, key=None, default=_NO_DEFAULT):
        """Lifted maximum per inner bag -> InnerScalar."""
        rank = key if key is not None else _identity
        return self.reduce(
            lambda a, b: a if rank(a) >= rank(b) else b, default
        )

    def collect_per_tag(self):
        """All elements of each inner bag as one tuple-valued InnerScalar.

        Use only when the inner bags are known to be small (for example a
        K-means centroid set); this is a deliberate scalability boundary.
        """
        partitions = self.optimizer.scalar_partitions(self.lctx.num_tags)
        wrapped = self.repr.map(lambda te: (te[0], (te[1],)))
        gathered = wrapped.reduce_by_key(lambda a, b: a + b, partitions)
        return InnerScalar(
            self.lctx, _fill_missing_tags(self.lctx, gathered, ())
        )

    def is_empty(self):
        """Lifted emptiness test -> InnerScalar[bool]."""
        return self.count().map(lambda n: n == 0)

    # -- closures (Sec. 5.1): unlifted UDF referencing an InnerScalar ---

    def map_with_closure(self, closure, fn):
        """A map whose UDF captures an InnerScalar (``mapWithClosure``).

        Each element meets the closure value with *its own* tag: the
        engine-level implementation is a join on the tags whose strategy
        the optimizer picks at runtime (Sec. 8.2).
        """
        if not isinstance(closure, InnerScalar):
            constant = closure
            return self.map(lambda x: fn(x, constant))
        self._require_same_context(closure)
        joined = self.optimizer.join_with_scalar(self.repr, closure)
        return InnerBag(
            self.lctx,
            joined.map(lambda record: retag(record[0], fn(*record[1]))),
        )

    def filter_with_closure(self, closure, fn):
        """A filter whose predicate captures an InnerScalar."""
        if not isinstance(closure, InnerScalar):
            constant = closure
            return self.filter(lambda x: fn(x, constant))
        self._require_same_context(closure)
        joined = self.optimizer.join_with_scalar(self.repr, closure)
        kept = joined.filter(lambda record: fn(*record[1]))
        return InnerBag(
            self.lctx, kept.map(lambda record: (record[0], record[1][0]))
        )

    # -- half-lifted operations (Sec. 5.2): plain bags from outside -----

    def join_with_plain(self, right_bag, num_partitions=None):
        """Half-lifted equi-join with a plain keyed bag (paper Sec. 5.2).

        ``self`` holds ``(key, value)`` elements; ``right_bag`` is a flat
        ``Bag[(key, w)]`` defined outside the lifted UDF.  Instead of
        replicating ``right_bag`` once per tag, the join key is the data
        key and the tag travels with the left values -- the exact
        three-line rewrite from the paper.
        """
        rekeyed = self.repr.map(
            lambda record: (record[1][0], (record[0], record[1][1]))
        )
        joined = rekeyed.join(right_bag, num_partitions=num_partitions)
        return InnerBag(
            self.lctx,
            joined.map(
                lambda record: (
                    record[1][0][0],
                    (record[0], (record[1][0][1], record[1][1])),
                )
            ),
        )

    # -- multi-level nesting (Sec. 7) ------------------------------------

    def as_sub_level(self):
        """Open a nesting level below this bag's elements.

        Every element becomes one tag of a deeper lifting context; the tag
        is the composite ``(outer_tag, element)``.  Returns
        ``(sub_context, element_scalar)`` where ``element_scalar`` is the
        InnerScalar holding each element under its composite tag.

        This is what a ``nested_map`` over an inner bag lowers to when the
        program has three or more levels of parallelism.
        """
        tags = self.repr.map(_identity).as_meta().distinct().cache()
        num_tags = tags.count(label="sub-level tag count")
        sub = self.lctx.sub_context(
            tags, num_tags, tag_to_parent=lambda t2: t2[0]
        )
        element = InnerScalar(sub, tags.map(lambda t2: (t2, t2[1])))
        return sub, element

    def join_on_parent(self, outer, self_key, outer_key,
                       num_partitions=None):
        """Join a deeper-level bag with a bag from the enclosing level.

        The half-lifted pattern for composite tags: the join key is
        ``(parent_tag, data_key)``, so the outer bag is *not* replicated
        per sub-tag.  Returns an InnerBag at ``self``'s level with
        elements ``(self_element, outer_element)``.
        """
        if self.lctx.parent is None:
            raise FlatteningError(
                "join_on_parent requires a nested lifting context"
            )
        if outer.lctx is not self.lctx.parent:
            raise FlatteningError(
                "outer operand must belong to the enclosing context"
            )
        to_parent = self.lctx.tag_to_parent
        left = self.repr.map(
            lambda te: (
                (to_parent(te[0]), self_key(te[1])), (te[0], te[1])
            )
        )
        right = outer.repr.map(
            lambda te: ((te[0], outer_key(te[1])), te[1])
        )
        joined = left.join(right, num_partitions=num_partitions)
        return InnerBag(
            self.lctx,
            joined.map(
                lambda record: (
                    record[1][0][0],
                    (record[1][0][1], record[1][1]),
                )
            ),
        )

    def retag_to_parent(self, fn=None):
        """Drop one nesting level: re-tag elements by the parent tag.

        ``fn(element)`` may transform the element on the way up (defaults
        to identity).
        """
        if self.lctx.parent is None:
            raise FlatteningError(
                "retag_to_parent requires a nested lifting context"
            )
        to_parent = self.lctx.tag_to_parent
        transform = fn if fn is not None else _identity
        return InnerBag(
            self.lctx.parent,
            self.repr.map(
                lambda te: (to_parent(te[0]), transform(te[1]))
            ),
        )

    # -- leaving the nested world ----------------------------------------

    def flatten(self):
        """Remove the nesting structure: a plain bag of all elements.

        This is the ``flatten`` of Sec. 4.6 -- its implementation simply
        removes the tags.
        """
        return self.repr.values()

    def collect_nested(self):
        """Driver-side ``{tag: [elements]}`` (runs a job; testing aid)."""
        nested = {}
        for tag, element in self.repr.collect():
            nested.setdefault(tag, []).append(element)
        return nested


def _identity(x):
    return x


def _to_composite_key(record):
    tag, (key, value) = record
    return ((tag, key), value)


def _from_composite_key(record):
    (tag, key), value = record
    return (tag, (key, value))


def _fill_missing_tags(lctx, keyed_bag, default):
    """Give every tag a value: missing tags get ``default``.

    Implemented with a cogroup against the per-UDF tags bag (Sec. 4.4:
    the representation has no element for empty inner bags, so operations
    with non-trivial defaults consult the stored tag set).
    """
    tagged_defaults = lctx.tags.map(lambda t: (t, None))
    partitions = lctx.optimizer.scalar_partitions(lctx.num_tags)
    cogrouped = tagged_defaults.cogroup(keyed_bag, partitions)
    return cogrouped.map(
        lambda record: (
            record[0],
            record[1][1][0] if record[1][1] else default,
        )
    )

"""JobService: fairness, concurrency, caching, eviction, lifecycle."""

import json
import threading

import pytest

from repro.engine import laptop_config
from repro.serve import (
    AdmissionRejected,
    JobService,
    ServiceClient,
    TenantConfig,
    encode_program,
)


def _count_program(tag, n=50):
    def run(job):
        data = job.dataset(
            "shared:%d" % n, lambda ctx: ctx.bag_of(range(n))
        )
        return data.map(lambda x: x + 1).count(label=tag)

    return run


@pytest.fixture
def service():
    svc = JobService(num_slots=1, seed=1)
    svc.add_tenant("alice", weight=2.0)
    svc.add_tenant("bob")
    svc.start()
    yield svc
    svc.shutdown(drain=False, timeout=10)


class _Gate:
    """A submitted job that parks the single worker slot until opened,
    so later submissions queue up and dequeue order is pure DRR."""

    def __init__(self, service, tenant="alice"):
        self.ready = threading.Event()
        self.open = threading.Event()

        def blocker(job):
            self.ready.set()
            assert self.open.wait(timeout=30)
            return "gate"

        self.handle = service.submit(tenant, blocker, label="gate")
        assert self.ready.wait(timeout=30)


class TestFairScheduling:
    def test_weighted_schedule_is_deterministic_and_exact(self, service):
        # Gate through bob: serving it spends bob's quantum and
        # advances the DRR cursor past him, so the asserted window
        # starts a fresh round at alice.
        gate = _Gate(service, tenant="bob")
        handles = []
        for i in range(4):
            handles.append(service.submit(
                "alice", _count_program("a%d" % i), label="a%d" % i
            ))
            handles.append(service.submit(
                "bob", _count_program("b%d" % i), label="b%d" % i
            ))
        gate.open.set()
        assert gate.handle.result(timeout=30) == "gate"
        for handle in handles:
            assert handle.result(timeout=30) == 50
        # seed=1 -> cycle [alice, bob]; weights 2:1 with unit costs
        # -> two alice jobs per bob job, starting after the gate.
        assert service.schedule() == [
            ("bob", "gate"),
            ("alice", "a0"), ("alice", "a1"), ("bob", "b0"),
            ("alice", "a2"), ("alice", "a3"), ("bob", "b1"),
            ("bob", "b2"), ("bob", "b3"),
        ]

    def test_no_tenant_starves(self, service):
        gate = _Gate(service)
        handles = [
            service.submit("alice", _count_program("a%d" % i),
                           label="a%d" % i)
            for i in range(6)
        ] + [service.submit("bob", _count_program("b0"), label="b0")]
        gate.open.set()
        for handle in handles:
            assert handle.result(timeout=30) == 50
        order = [label for _, label in service.schedule()]
        # bob's lone job runs within one DRR round of the backlog, not
        # after all of alice's.
        assert order.index("b0") <= order.index("a2")


class TestConcurrentClients:
    def test_many_threads_many_tenants(self):
        svc = JobService(num_slots=2, seed=1)
        tenants = ["t%d" % i for i in range(3)]
        for name in tenants:
            svc.add_tenant(name, max_pending=64)
        svc.start()
        try:
            results = {}
            lock = threading.Lock()

            def client_main(index):
                client = ServiceClient(svc, tenants[index % 3])
                got = [
                    client.run(
                        _count_program("c%d-j%d" % (index, j)),
                        label="c%d-j%d" % (index, j), timeout=60,
                    )
                    for j in range(3)
                ]
                with lock:
                    results[index] = got

            threads = [
                threading.Thread(target=client_main, args=(i,))
                for i in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert all(not t.is_alive() for t in threads)
            assert results == {i: [50, 50, 50] for i in range(6)}
            stats = svc.stats()
            for name in tenants:
                assert stats["tenants"][name]["completed"] == 6
                assert stats["tenants"][name]["failed"] == 0
            cache = stats["cache"]
            assert cache["misses"] == 1  # one build of the shared bag
            assert cache["hits"] == 17
        finally:
            svc.shutdown(timeout=30)

    def test_backend_parity(self):
        def run_on(backend):
            svc = JobService(
                config=laptop_config(backend=backend),
                num_slots=2, seed=1,
            )
            svc.add_tenant("alice")
            svc.add_tenant("bob")
            svc.start()
            try:
                handles = [
                    svc.submit(
                        ["alice", "bob"][i % 2],
                        _pagerankish(), label="j%d" % i,
                    )
                    for i in range(4)
                ]
                return [h.result(timeout=120) for h in handles]
            finally:
                svc.shutdown(timeout=60)

        serial = run_on("serial")
        process = run_on("process")
        assert serial == process
        assert len(set(map(str, serial))) == 1  # same job -> same answer


def _pagerankish():
    def run(job):
        edges = job.dataset(
            "edges",
            lambda ctx: ctx.bag_of(
                [(i % 7, (i * 3) % 7) for i in range(60)]
            ),
        )
        grouped = edges.group_by_key()
        return sorted(
            (k, len(v)) for k, v in grouped.collect()
        )

    return run


class TestAdmissionUnderLoad:
    def test_quota_rejection_is_typed_and_counted(self, service):
        gate = _Gate(service, tenant="bob")
        svc = service
        tight = TenantConfig("carol", max_pending=2)
        svc.add_tenant(tight)
        h1 = svc.submit("carol", _count_program("c0"), label="c0")
        h2 = svc.submit("carol", _count_program("c1"), label="c1")
        with pytest.raises(AdmissionRejected) as exc:
            svc.submit("carol", _count_program("c2"), label="c2")
        assert exc.value.reason == "tenant-quota"
        gate.open.set()
        assert h1.result(timeout=30) == 50
        assert h2.result(timeout=30) == 50
        assert svc.tenant_stats("carol").rejected == 1
        assert svc.tenant_stats("carol").submitted == 2

    def test_unknown_tenant_rejected(self, service):
        with pytest.raises(AdmissionRejected) as exc:
            service.submit("mallory", _count_program("m0"))
        assert exc.value.reason == "unknown-tenant"

    def test_submit_before_start_raises(self):
        svc = JobService()
        svc.add_tenant("alice")
        with pytest.raises(RuntimeError):
            svc.submit("alice", _count_program("x"))


class TestArtifactLifecycle:
    def test_pinned_artifacts_survive_in_job_pressure(self):
        # Budget fits one artifact; a job resolving two keeps both
        # pinned (transient overshoot), and only after the job ends is
        # the cache squeezed back under budget.
        svc = JobService(num_slots=1, seed=1,
                         cache_limit_bytes=6000)
        svc.add_tenant("alice")
        svc.start()
        try:
            observed = {}

            def two_artifacts(job):
                a = job.dataset(
                    "a", lambda ctx: ctx.bag_of(range(100))
                )
                b = job.dataset(
                    "b", lambda ctx: ctx.bag_of(range(100))
                )
                total = a.count() + b.count()
                svc.cache.charge("a")
                svc.cache.charge("b")
                observed["mid-job"] = svc.cache.keys()
                return total

            handle = svc.submit("alice", two_artifacts)
            assert handle.result(timeout=30) == 200
            assert sorted(observed["mid-job"]) == ["a", "b"]
            stats = svc.cache.stats()
            assert stats["evictions"] == 1
            assert len(svc.cache) == 1
        finally:
            svc.shutdown(timeout=30)

    def test_eviction_invalidates_adopted_layout(self):
        """The acceptance-criterion test: evicting a cached artifact
        must drop its origin->layout registry entries, so a later job
        re-shuffles instead of adopting a layout whose partitions are
        gone.  If a stale layout survived eviction, the warm and
        post-eviction joins would show the same elision decisions and
        the post-eviction join would read from released partitions."""
        svc = JobService(num_slots=1, seed=1,
                         cache_limit_bytes=1 << 20)
        svc.add_tenant("alice")
        svc.start()
        try:
            def grouped_bag(ctx):
                return ctx.bag_of(
                    [(i % 8, i) for i in range(200)]
                ).group_by_key(4)

            def join_job(job):
                grouped = job.dataset("grouped", grouped_bag)
                other = job.ctx.bag_of(
                    [(k, k * 10) for k in range(8)]
                )
                joined = grouped.join(other, num_partitions=4)
                return sorted(
                    (k, len(g), v) for k, (g, v) in joined.collect()
                )

            warm_up = svc.submit("alice", join_job, label="warm-up")
            expected = warm_up.result(timeout=30)
            warm = svc.submit("alice", join_job, label="warm")
            assert warm.result(timeout=30) == expected
            # Warm: the artifact's registered layout is adopted.
            assert "adopt-left" in [
                d.choice for d in warm.accounting.decisions
            ]
            assert warm.accounting.shuffle_records_saved > 0
            registry_before = svc.ctx.executor.layout_registry_size()
            assert registry_before > 0

            assert svc.cache.evict("grouped") is True
            assert svc.ctx.executor.layout_registry_size() < (
                registry_before
            )

            cold = svc.submit("alice", join_job, label="cold")
            assert cold.result(timeout=30) == expected
            # The artifact was rebuilt from scratch: full shuffle for
            # the group-by (no cached partitions to elide into).
            assert cold.accounting.shuffle_records > (
                warm.accounting.shuffle_records
            )
            assert svc.cache.stats()["evictions"] == 1
        finally:
            svc.shutdown(timeout=30)

    def test_broadcast_artifacts_are_cached(self, service):
        def uses_broadcast(job):
            table = job.broadcast(
                "lookup", lambda ctx: {i: i * i for i in range(100)}
            )
            data = job.dataset(
                "nums", lambda ctx: ctx.bag_of(range(100))
            )
            return data.map(lambda x: table.value[x]).sum()

        first = service.submit("alice", uses_broadcast)
        second = service.submit("bob", uses_broadcast)
        expected = sum(i * i for i in range(100))
        assert first.result(timeout=30) == expected
        assert second.result(timeout=30) == expected
        stats = service.cache.stats()
        assert stats["misses"] == 2  # one bag, one broadcast
        assert stats["hits"] == 2


class TestLifecycleAndReporting:
    def test_failed_job_reports_and_reraises(self, service):
        def boom(job):
            raise ValueError("intentional")

        handle = service.submit("alice", boom, label="boom")
        with pytest.raises(ValueError, match="intentional"):
            handle.result(timeout=30)
        assert handle.state == "failed"
        assert service.drain(timeout=30)
        assert service.tenant_stats("alice").failed == 1

    def test_drain_then_submit_rejected(self, service):
        handle = service.submit("alice", _count_program("a0"))
        assert service.drain(timeout=30)
        assert handle.result(timeout=1) == 50
        with pytest.raises(AdmissionRejected) as exc:
            service.submit("alice", _count_program("a1"))
        assert exc.value.reason == "draining"

    def test_shutdown_without_drain_abandons_queued(self):
        svc = JobService(num_slots=1, seed=1)
        svc.add_tenant("alice")
        svc.start()
        gate = _Gate(svc)
        queued = svc.submit("alice", _count_program("later"),
                            label="later")
        gate.open.set()
        svc.shutdown(drain=False, timeout=30)
        with pytest.raises(AdmissionRejected) as exc:
            queued.result(timeout=5)
        assert exc.value.reason == "shutdown"

    def test_reports_written_per_tenant(self, tmp_path):
        svc = JobService(num_slots=1, seed=1,
                         report_dir=str(tmp_path))
        svc.add_tenant("alice")
        svc.add_tenant("bob")
        svc.start()
        for i in range(2):
            svc.submit("alice", _count_program("a%d" % i),
                       label="a%d" % i)
        svc.submit("bob", _count_program("b0"), label="b0")
        svc.shutdown(timeout=30)

        alice_log = (tmp_path / "alice.jsonl").read_text()
        records = [
            json.loads(line) for line in alice_log.splitlines()
        ]
        assert len(records) == 2
        assert all(r["status"] == "ok" for r in records)
        assert all(r["jobs"] >= 1 for r in records)
        report = json.loads(
            (tmp_path / "alice-report.json").read_text()
        )
        assert report["label"] == "serve:alice"
        (entry,) = report["entries"]
        assert entry["system"] == "serve"
        assert entry["totals"]["jobs"] == 2
        assert (tmp_path / "bob-report.json").exists()
        assert report["meta"]["stats"]["completed"] == 2

    def test_serialized_submission_round_trip(self, service):
        client = ServiceClient(service, "alice")
        payload = encode_program(_count_program("wire"))
        handle = client.submit_serialized(payload, label="wire")
        assert handle.result(timeout=30) == 50

    def test_named_program_submission(self, service):
        client = ServiceClient(service, "bob")
        result = client.run(
            "range-sum", n=100, timeout=60
        )
        assert result == sum(range(100))

    def test_context_manager(self):
        with JobService(num_slots=1, seed=1) as svc:
            svc.add_tenant("alice")
            handle = svc.submit("alice", _count_program("cm"))
            assert handle.result(timeout=30) == 50
        # Exiting shut the service down cleanly.
        with pytest.raises(AdmissionRejected):
            svc.submit("alice", _count_program("late"))

    def test_bounded_service_state_over_many_jobs(self):
        svc = JobService(num_slots=1, seed=1)
        svc.add_tenant("alice")
        svc.start()
        try:
            for i in range(30):
                handle = svc.submit(
                    "alice", _count_program("j%d" % i),
                    label="j%d" % i,
                )
                assert handle.result(timeout=30) == 50
            # The shared context's trace was drained per job and the
            # layout registry tracks only the one cached artifact's
            # subtree.
            assert svc.ctx.trace.num_jobs == 0
            assert len(svc.ctx.executor.decisions) == 0
            assert svc.ctx.executor.layout_registry_size() <= 2
            assert svc.tenant_stats("alice").completed == 30
        finally:
            svc.shutdown(timeout=30)

"""Elementwise and structural Bag transformations."""

from collections import Counter

import pytest

from repro.errors import PlanError, UdfError


def bag_counter(bag):
    """Multiset view of a bag (bags are unordered)."""
    return Counter(bag.collect())


class TestMapFilterFlatMap:
    def test_map(self, ctx):
        bag = ctx.bag_of([1, 2, 3])
        assert bag_counter(bag.map(lambda x: x * 10)) == Counter(
            [10, 20, 30]
        )

    def test_map_preserves_source(self, ctx):
        bag = ctx.bag_of([1, 2])
        bag.map(lambda x: x + 1).collect()
        assert bag_counter(bag) == Counter([1, 2])

    def test_filter(self, ctx):
        bag = ctx.bag_of(range(10))
        assert sorted(bag.filter(lambda x: x % 3 == 0).collect()) == [
            0, 3, 6, 9,
        ]

    def test_flat_map(self, ctx):
        bag = ctx.bag_of([1, 2])
        assert bag_counter(
            bag.flat_map(lambda x: [x] * x)
        ) == Counter({1: 1, 2: 2})

    def test_flat_map_empty_results(self, ctx):
        bag = ctx.bag_of([1, 2, 3])
        assert bag.flat_map(lambda _x: []).collect() == []

    def test_chained_transformations(self, ctx):
        bag = ctx.bag_of(range(6))
        result = (
            bag.map(lambda x: x * 2)
            .filter(lambda x: x > 4)
            .flat_map(lambda x: [x, -x])
        )
        assert sorted(result.collect()) == [-10, -8, -6, 6, 8, 10]

    def test_udf_error_is_wrapped(self, ctx):
        bag = ctx.bag_of([1, 0])
        with pytest.raises(UdfError) as err:
            bag.map(lambda x: 1 // x).collect()
        assert isinstance(err.value.original, ZeroDivisionError)

    def test_map_partitions_sees_partition_index(self, ctx):
        bag = ctx.bag_of(range(8), num_partitions=4)
        counts = bag.map_partitions(
            lambda items, index: [(index, len(items))]
        ).collect()
        assert sorted(counts) == [(0, 2), (1, 2), (2, 2), (3, 2)]


class TestKeyedHelpers:
    def test_key_by(self, ctx):
        bag = ctx.bag_of(["aa", "b"])
        assert bag_counter(bag.key_by(len)) == Counter(
            [(2, "aa"), (1, "b")]
        )

    def test_map_values(self, ctx):
        bag = ctx.bag_of([("a", 1), ("b", 2)])
        assert bag_counter(bag.map_values(lambda v: v * 5)) == Counter(
            [("a", 5), ("b", 10)]
        )

    def test_keys_values_swap(self, ctx):
        bag = ctx.bag_of([("a", 1), ("b", 2)])
        assert sorted(bag.keys().collect()) == ["a", "b"]
        assert sorted(bag.values().collect()) == [1, 2]
        assert sorted(bag.swap().collect()) == [(1, "a"), (2, "b")]


class TestUnionDistinct:
    def test_union_keeps_duplicates(self, ctx):
        a = ctx.bag_of([1, 2])
        b = ctx.bag_of([2, 3])
        assert bag_counter(a.union(b)) == Counter({1: 1, 2: 2, 3: 1})

    def test_union_of_three(self, ctx):
        a, b, c = (ctx.bag_of([i]) for i in range(3))
        assert sorted(a.union(b, c).collect()) == [0, 1, 2]

    def test_nested_unions_flatten(self, ctx):
        a = ctx.bag_of([1])
        nested = a.union(ctx.bag_of([2])).union(ctx.bag_of([3]))
        assert sorted(nested.collect()) == [1, 2, 3]

    def test_union_rejects_foreign_context(self, ctx, config):
        from repro.engine import EngineContext

        other = EngineContext(config)
        with pytest.raises(PlanError):
            ctx.bag_of([1]).union(other.bag_of([2]))

    def test_distinct(self, ctx):
        bag = ctx.bag_of([1, 1, 2, 2, 2, 3])
        assert sorted(bag.distinct().collect()) == [1, 2, 3]

    def test_distinct_on_tuples(self, ctx):
        bag = ctx.bag_of([("a", 1), ("a", 1), ("b", 2)])
        assert sorted(bag.distinct().collect()) == [("a", 1), ("b", 2)]


class TestZipWithUniqueId:
    def test_ids_are_unique(self, ctx):
        bag = ctx.bag_of(range(20), num_partitions=3)
        ids = [i for _x, i in bag.zip_with_unique_id().collect()]
        assert len(set(ids)) == 20

    def test_elements_preserved(self, ctx):
        bag = ctx.bag_of(["x", "y", "z"])
        elements = [e for e, _i in bag.zip_with_unique_id().collect()]
        assert sorted(elements) == ["x", "y", "z"]


class TestExplainLabels:
    def test_explain_shows_plan_tree(self, ctx):
        bag = ctx.bag_of([1]).map(lambda x: x).filter(bool)
        text = bag.explain()
        assert "Filter" in text
        assert "Map" in text
        assert "Parallelize" in text

    def test_label_appears_in_explain(self, ctx):
        bag = ctx.bag_of([1]).with_label("input data")
        assert "input data" in bag.explain()

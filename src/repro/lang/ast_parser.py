"""The parsing phase: source-to-source rewriting of plain Python UDFs.

The paper performs this phase with Scala macros at compile time; here it
is Python ``ast`` rewriting at decoration time.  Division of labour:

* *Scalar operations* need no rewriting -- operator overloading on
  :class:`~repro.core.primitives.InnerScalar` stages ``a + b`` and friends
  at runtime (the dynamic equivalent of ``binaryScalarOp``).
* *Control flow statements* are rewritten into the higher-order functions
  of :mod:`repro.core.control_flow` (paper Sec. 6.1): ``while`` becomes a
  ``while_loop(state, cond_fn, body_fn)`` call, ``if`` becomes
  ``cond(pred, then_fn, else_fn, state)``, and ``for _ in range(...)``
  desugars into a ``while``.
* *Closures are made explicit*: the rewriter computes which local
  variables each loop/branch reads or writes and threads them through an
  explicit state dict -- the Python rendering of "when a UDF refers to an
  outside variable, Matryoshka adds it as a parameter".
* ``and`` / ``or`` / ``not`` / conditional expressions -- which Python
  does not let a library overload -- become the staged helpers of
  :mod:`repro.lang.staged`.

Rewritten UDFs degrade gracefully: called with plain values they behave
exactly like the original function (short-circuiting included), so one
definition composes at any nesting level.
"""

import ast
import functools
import inspect
import textwrap
import warnings

from ..analysis.udf_lint import first_unsupported
from ..core.control_flow import cond as _cond
from ..core.control_flow import while_loop as _while_loop
from ..errors import ParsingError, UnsupportedConstructError
from .staged import staged_and, staged_not, staged_or, staged_select

_HELPERS = {
    "__mz_while_loop": _while_loop,
    "__mz_cond": _cond,
    "__mz_and": staged_and,
    "__mz_or": staged_or,
    "__mz_not": staged_not,
    "__mz_select": staged_select,
}

_STATE_ARG = "__mz_s"


def nested_udf(fn=None, *, strict=False):
    """Decorator: run the parsing phase on a plain Python UDF.

    Returns a function with the same signature whose control flow has
    been rewritten into lifted combinators.  The rewritten source is
    available as ``fn.transformed_source``.

    Unsupported constructs (try/except, yield, global mutation, ...)
    are rejected eagerly with an
    :class:`~repro.errors.UnsupportedConstructError` pointing at the
    offending line, before any rewriting happens.

    Args:
        strict: Also run the full static analysis
            (:func:`repro.analysis.analyze_udf`), including the NPL2xx
            closure-serializability pass: error diagnostics raise an
            :class:`~repro.errors.AnalysisError` at decoration time,
            warnings are emitted through :mod:`warnings`.
    """
    if fn is None:
        return functools.partial(nested_udf, strict=strict)
    if strict:
        _check_strict(fn)
    rewritten, source = parse_udf(fn)
    rewritten = functools.wraps(fn)(rewritten)
    rewritten.transformed_source = source
    rewritten.original = fn
    return rewritten


def _check_strict(fn):
    """The ``strict=True`` pre-flight: full analysis, errors fatal."""
    from ..analysis import analyze_udf
    from ..errors import AnalysisError

    diagnostics = analyze_udf(fn)
    errors = [d for d in diagnostics if d.severity == "error"]
    for diag in diagnostics:
        if diag.severity != "error":
            warnings.warn(str(diag), stacklevel=3)
    if errors:
        raise AnalysisError(errors)


# `lifted` is the name users see in examples; `nested_udf` is descriptive.
lifted = nested_udf


def parse_udf(fn):
    """Rewrite ``fn``; returns ``(new_function, transformed_source)``.

    Before rewriting, the body is checked against the shared
    unsupported-construct walker (:mod:`repro.analysis.udf_lint`): the
    first error-severity finding raises
    :class:`~repro.errors.UnsupportedConstructError` with the
    construct's real ``file:line:col``, instead of a downstream
    rewrite- or staging-time failure.
    """
    try:
        lines, start_line = inspect.getsourcelines(fn)
    except (OSError, TypeError) as exc:
        raise ParsingError(
            "cannot read source of %r (lambdas and interactively defined "
            "functions cannot be parsed): %s" % (fn, exc)
        ) from exc
    raw = "".join(lines)
    source = textwrap.dedent(raw)
    tree = ast.parse(source)
    fndef = tree.body[0]
    if not isinstance(fndef, (ast.FunctionDef, ast.AsyncFunctionDef)):
        raise ParsingError("expected a function definition")
    if isinstance(fndef, ast.AsyncFunctionDef):
        raise ParsingError("async UDFs are not supported")
    line_offset = start_line - 1
    filename = getattr(
        getattr(fn, "__code__", None), "co_filename", "<udf>"
    )
    blocker = first_unsupported(
        fndef, filename, line_offset, _dedent_width(raw, source)
    )
    if blocker is not None:
        raise UnsupportedConstructError(
            str(blocker), code=blocker.code,
            line=blocker.line, col=blocker.col,
        )
    fndef.decorator_list = []
    _Rewriter(line_offset).rewrite_function(fndef)
    module = ast.Module(body=[fndef], type_ignores=[])
    ast.fix_missing_locations(module)
    transformed_source = ast.unparse(module)
    namespace = dict(fn.__globals__)
    namespace.update(_closure_bindings(fn))
    namespace.update(_HELPERS)
    code = compile(module, filename="<matryoshka-parsing-phase>",
                   mode="exec")
    exec(code, namespace)  # noqa: S102 -- this *is* the staging step
    return namespace[fndef.name], transformed_source


def _closure_bindings(fn):
    if not fn.__closure__:
        return {}
    return {
        name: cell.cell_contents
        for name, cell in zip(fn.__code__.co_freevars, fn.__closure__)
    }


def _dedent_width(raw, dedented):
    """How many leading columns ``textwrap.dedent`` removed."""
    for raw_line, ded_line in zip(
        raw.splitlines(), dedented.splitlines()
    ):
        if ded_line.strip():
            return len(raw_line) - len(ded_line)
    return 0


class _Rewriter:
    """Statement-level rewriting with sequential name-binding tracking."""

    def __init__(self, line_offset=0):
        self._counter = 0
        self._line_offset = line_offset

    def _line(self, node):
        """File-absolute line number of a (dedented-snippet) AST node."""
        return getattr(node, "lineno", 0) + self._line_offset

    def _fresh(self, base):
        self._counter += 1
        return "__mz_%s_%d" % (base, self._counter)

    def rewrite_function(self, fndef):
        bound = set()
        for arg in fndef.args.posonlyargs + fndef.args.args:
            bound.add(arg.arg)
        for arg in fndef.args.kwonlyargs:
            bound.add(arg.arg)
        if fndef.args.vararg:
            bound.add(fndef.args.vararg.arg)
        if fndef.args.kwarg:
            bound.add(fndef.args.kwarg.arg)
        fndef.body = self._rewrite_block(fndef.body, bound, top=True)

    def _rewrite_block(self, stmts, bound, top=False):
        out = []
        for stmt in stmts:
            out.extend(self._rewrite_stmt(stmt, bound, top))
        return out

    def _rewrite_stmt(self, stmt, bound, top):
        if isinstance(stmt, ast.While):
            return self._rewrite_while(stmt, bound)
        if isinstance(stmt, ast.If):
            return self._rewrite_if(stmt, bound)
        if isinstance(stmt, ast.For):
            return self._rewrite_for(stmt, bound)
        if isinstance(stmt, (ast.Break, ast.Continue)):
            raise UnsupportedConstructError(
                "break/continue cannot be lifted; restructure the loop "
                "condition instead (line %d)" % self._line(stmt),
                code="NPL107", line=self._line(stmt),
            )
        if isinstance(stmt, ast.Return) and not top:
            raise UnsupportedConstructError(
                "return inside a lifted control-flow construct is not "
                "supported; assign to a variable and return after "
                "(line %d)" % self._line(stmt),
                code="NPL108", line=self._line(stmt),
            )
        stmt = _ExprRewriter().visit(stmt)
        bound.update(_assigned_names(stmt))
        return [stmt]

    # -- while ----------------------------------------------------------

    def _rewrite_while(self, stmt, bound):
        if stmt.orelse:
            raise UnsupportedConstructError(
                "while/else cannot be lifted (line %d)" % self._line(stmt),
                code="NPL109", line=self._line(stmt),
            )
        read = _read_names(stmt.test) | _read_names_block(stmt.body)
        assigned = _assigned_names_block(stmt.body)
        state_names = sorted((read | assigned) & bound)
        if not state_names:
            raise ParsingError(
                "while loop at line %d uses no variables bound before "
                "it; nothing to lift" % self._line(stmt)
            )
        state_var = self._fresh("state")
        cond_name = self._fresh("cond")
        body_name = self._fresh("body")
        cond_def = self._make_state_fn(
            cond_name,
            state_names,
            [ast.Return(value=_ExprRewriter().visit(stmt.test))],
        )
        inner_bound = set(state_names)
        body_stmts = self._rewrite_block(list(stmt.body), inner_bound)
        body_stmts.append(ast.Return(value=_state_dict(state_names)))
        body_def = self._make_state_fn(body_name, state_names, body_stmts)
        loop_vars = sorted(assigned & set(state_names))
        call = ast.Assign(
            targets=[_store(state_var)],
            value=_call(
                "__mz_while_loop",
                [_state_dict(state_names), _load(cond_name),
                 _load(body_name)],
                keywords={
                    "loop_vars": ast.List(
                        elts=[ast.Constant(value=v) for v in loop_vars],
                        ctx=ast.Load(),
                    )
                },
            ),
        )
        unpack = _unpack_state(state_var, state_names)
        bound.update(assigned)
        init = ast.Assign(
            targets=[_store(state_var)], value=_state_dict(state_names)
        )
        del init  # state dict is passed inline; kept for readability
        return [cond_def, body_def, call] + unpack

    # -- if ---------------------------------------------------------------

    def _rewrite_if(self, stmt, bound):
        read = (
            _read_names(stmt.test)
            | _read_names_block(stmt.body)
            | _read_names_block(stmt.orelse)
        )
        assigned_then = _assigned_names_block(stmt.body)
        assigned_else = _assigned_names_block(stmt.orelse)
        out_names = sorted(assigned_then | assigned_else)
        for name in out_names:
            both = name in assigned_then and name in assigned_else
            if name not in bound and not both:
                raise ParsingError(
                    "variable %r is assigned in only one branch of the "
                    "if at line %d and not bound before it; initialize "
                    "it before the if" % (name, self._line(stmt))
                )
        in_names = sorted((read | set(out_names)) & bound)
        state_var = self._fresh("state")
        then_name = self._fresh("then")
        else_name = self._fresh("else")
        then_def = self._make_branch_fn(
            then_name, in_names, list(stmt.body), out_names
        )
        else_def = self._make_branch_fn(
            else_name, in_names, list(stmt.orelse), out_names
        )
        call = ast.Assign(
            targets=[_store(state_var)],
            value=_call(
                "__mz_cond",
                [
                    _ExprRewriter().visit(stmt.test),
                    _load(then_name),
                    _load(else_name),
                    _state_dict(in_names),
                ],
            ),
        )
        unpack = _unpack_state(state_var, out_names)
        bound.update(out_names)
        return [then_def, else_def, call] + unpack

    def _make_branch_fn(self, name, in_names, body, out_names):
        inner_bound = set(in_names)
        stmts = self._rewrite_block(body, inner_bound)
        stmts.append(ast.Return(value=_state_dict(out_names)))
        return self._make_state_fn(name, in_names, stmts)

    # -- for over range ----------------------------------------------------

    def _rewrite_for(self, stmt, bound):
        if stmt.orelse:
            raise UnsupportedConstructError(
                "for/else cannot be lifted (line %d)" % self._line(stmt),
                code="NPL109", line=self._line(stmt),
            )
        if not (
            isinstance(stmt.iter, ast.Call)
            and isinstance(stmt.iter.func, ast.Name)
            and stmt.iter.func.id == "range"
            and not stmt.iter.keywords
            and 1 <= len(stmt.iter.args) <= 3
        ):
            raise UnsupportedConstructError(
                "only `for _ in range(...)` loops can be lifted; use Bag "
                "operations for data-parallel iteration (line %d)"
                % self._line(stmt),
                code="NPL110", line=self._line(stmt),
            )
        if not isinstance(stmt.target, ast.Name):
            raise UnsupportedConstructError(
                "range loop target must be a simple name (line %d)"
                % self._line(stmt),
                code="NPL110", line=self._line(stmt),
            )
        args = stmt.iter.args
        if len(args) == 1:
            start, stop, step = ast.Constant(value=0), args[0], 1
        elif len(args) == 2:
            start, stop, step = args[0], args[1], 1
        else:
            start, stop = args[0], args[1]
            step = _literal_int(args[2])
            if step is None or step == 0:
                raise UnsupportedConstructError(
                    "range step must be a non-zero integer literal "
                    "(line %d)" % self._line(stmt),
                    code="NPL110", line=self._line(stmt),
                )
        target = stmt.target.id
        stop_var = self._fresh("stop")
        prologue = [
            ast.Assign(targets=[_store(target)], value=start),
            ast.Assign(targets=[_store(stop_var)], value=stop),
        ]
        comparison = ast.Compare(
            left=_load(target),
            ops=[ast.Lt() if step > 0 else ast.Gt()],
            comparators=[_load(stop_var)],
        )
        increment = ast.Assign(
            targets=[_store(target)],
            value=ast.BinOp(
                left=_load(target),
                op=ast.Add(),
                right=ast.Constant(value=step),
            ),
        )
        loop = ast.While(
            test=comparison, body=list(stmt.body) + [increment], orelse=[]
        )
        ast.copy_location(loop, stmt)
        for node in prologue:
            ast.copy_location(node, stmt)
        out = []
        for node in prologue:
            out.extend(self._rewrite_stmt(node, bound, top=False))
        out.extend(self._rewrite_while(loop, bound))
        return out

    # -- helpers ------------------------------------------------------------

    def _make_state_fn(self, name, state_names, body):
        unpack = _unpack_state(_STATE_ARG, state_names)
        return ast.FunctionDef(
            name=name,
            args=ast.arguments(
                posonlyargs=[],
                args=[ast.arg(arg=_STATE_ARG)],
                vararg=None,
                kwonlyargs=[],
                kw_defaults=[],
                kwarg=None,
                defaults=[],
            ),
            body=unpack + body,
            decorator_list=[],
            returns=None,
        )


class _ExprRewriter(ast.NodeTransformer):
    """Rewrites boolean operators, `not`, ternaries, and chained compares."""

    def visit_BoolOp(self, node):
        self.generic_visit(node)
        helper = "__mz_and" if isinstance(node.op, ast.And) else "__mz_or"
        result = node.values[0]
        for value in node.values[1:]:
            result = _call(helper, [result, _thunk(value)])
        return result

    def visit_UnaryOp(self, node):
        self.generic_visit(node)
        if isinstance(node.op, ast.Not):
            return _call("__mz_not", [node.operand])
        return node

    def visit_IfExp(self, node):
        self.generic_visit(node)
        return _call(
            "__mz_select",
            [node.test, _thunk(node.body), _thunk(node.orelse)],
        )

    def visit_Compare(self, node):
        self.generic_visit(node)
        if len(node.ops) == 1:
            return node
        # a < b < c  ==>  staged_and(a < b, lambda: b < c ...)
        # NOTE: middle operands are evaluated once per comparison.
        parts = []
        left = node.left
        for op, comparator in zip(node.ops, node.comparators):
            parts.append(
                ast.Compare(left=left, ops=[op], comparators=[comparator])
            )
            left = comparator
        result = parts[0]
        for part in parts[1:]:
            result = _call("__mz_and", [result, _thunk(part)])
        return result


# ---------------------------------------------------------------------------
# AST construction / analysis helpers
# ---------------------------------------------------------------------------


def _literal_int(node):
    """The value of an integer literal node (incl. negatives), or None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and isinstance(node.operand.value, int)
    ):
        return -node.operand.value
    return None


def _load(name):
    return ast.Name(id=name, ctx=ast.Load())


def _store(name):
    return ast.Name(id=name, ctx=ast.Store())


def _call(name, args, keywords=None):
    kw = [
        ast.keyword(arg=key, value=value)
        for key, value in (keywords or {}).items()
    ]
    return ast.Call(func=_load(name), args=args, keywords=kw)


def _thunk(expr):
    return ast.Lambda(
        args=ast.arguments(
            posonlyargs=[],
            args=[],
            vararg=None,
            kwonlyargs=[],
            kw_defaults=[],
            kwarg=None,
            defaults=[],
        ),
        body=expr,
    )


def _state_dict(names):
    return ast.Dict(
        keys=[ast.Constant(value=name) for name in names],
        values=[_load(name) for name in names],
    )


def _unpack_state(state_var, names):
    return [
        ast.Assign(
            targets=[_store(name)],
            value=ast.Subscript(
                value=_load(state_var),
                slice=ast.Constant(value=name),
                ctx=ast.Load(),
            ),
        )
        for name in names
    ]


def _assigned_names(stmt):
    names = set()
    for node in ast.walk(stmt):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
    return names


def _assigned_names_block(stmts):
    names = set()
    for stmt in stmts:
        names |= _assigned_names(stmt)
    return names


def _read_names(node):
    return {
        child.id
        for child in ast.walk(node)
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load)
    }


def _read_names_block(stmts):
    names = set()
    for stmt in stmts:
        names |= _read_names(stmt)
    return names

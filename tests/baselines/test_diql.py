"""The DIQL-style comprehension-compiler baseline."""

import pytest

from repro.baselines.diql import DiqlQuery, Monoid
from repro.errors import UnsupportedFeatureError


class TestSimpleComprehensions:
    def test_select_where(self, ctx):
        query = (
            DiqlQuery(ctx.bag_of(range(10)))
            .where(lambda x: x % 2 == 0)
            .select(lambda x: x * 10)
        )
        assert sorted(query.compile().collect()) == [0, 20, 40, 60, 80]

    def test_stacked_clauses(self, ctx):
        query = (
            DiqlQuery(ctx.bag_of(range(20)))
            .where(lambda x: x > 5)
            .select(lambda x: x - 5)
            .where(lambda x: x % 3 == 0)
        )
        assert sorted(query.compile().collect()) == [3, 6, 9, 12]


class TestAlgebraicAggregation:
    def test_monoid_count_flattens_to_reduce(self, ctx):
        query = (
            DiqlQuery(ctx.bag_of("aabbbc"))
            .group_by(lambda ch: ch)
            .reduce(Monoid.count())
        )
        assert query.compile().collect_as_map() == {
            "a": 2, "b": 3, "c": 1,
        }
        assert "reduceByKey (flattened)" in query.explain()

    def test_monoid_sum_with_mapper(self, ctx):
        query = (
            DiqlQuery(ctx.bag_of([("a", 2), ("a", 3), ("b", 10)]))
            .group_by(lambda kv: kv[0])
            .reduce(Monoid.sum(lambda kv: kv[1]))
        )
        assert query.compile().collect_as_map() == {"a": 5, "b": 10}


class TestHolisticAggregation:
    def test_falls_back_to_group_materialization(self, ctx):
        query = (
            DiqlQuery(ctx.bag_of([("a", 1), ("a", 5), ("b", 2)]))
            .group_by(lambda kv: kv[0])
            .aggregate_groups(
                lambda _k, records: max(v for _key, v in records)
            )
        )
        assert "outer-parallel fallback" in query.explain()
        assert query.compile().collect_as_map() == {"a": 5, "b": 2}


class TestRejections:
    def test_inner_control_flow_rejected(self, ctx):
        query = (
            DiqlQuery(ctx.bag_of([("a", 1)]))
            .group_by(lambda kv: kv[0])
            .aggregate_groups(lambda _k, r: r, control_flow=True)
        )
        with pytest.raises(UnsupportedFeatureError):
            query.compile()

    def test_aggregation_requires_group_by(self, ctx):
        with pytest.raises(UnsupportedFeatureError):
            DiqlQuery(ctx.bag_of([1])).reduce(Monoid.count())

    def test_clauses_after_aggregation_rejected(self, ctx):
        query = (
            DiqlQuery(ctx.bag_of([("a", 1)]))
            .group_by(lambda kv: kv[0])
            .reduce(Monoid.count())
        )
        with pytest.raises(UnsupportedFeatureError):
            query.where(lambda x: True)

    def test_double_group_by_rejected(self, ctx):
        query = DiqlQuery(ctx.bag_of([1])).group_by(lambda x: x)
        with pytest.raises(UnsupportedFeatureError):
            query.group_by(lambda x: x)

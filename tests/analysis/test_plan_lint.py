"""NPL3xx plan lint and the ``Bag.collect(lint=...)`` hook."""

import dataclasses
import warnings

import pytest

from repro.analysis import analyze_bag, analyze_plan
from repro.engine import EngineContext, laptop_config
from repro.errors import AnalysisError, PlanError


def codes(diags):
    return [d.code for d in diags]


def _keyed(ctx, n=60):
    return ctx.bag_of(list(range(n))).map(lambda x: (x % 3, x))


def _key_is_zero(kv):
    return kv[0] == 0


def _value_positive(kv):
    return kv[1] > 0


# ---------------------------------------------------------------------------
# NPL301: uncached reuse
# ---------------------------------------------------------------------------


def test_npl301_uncached_reuse(ctx):
    reduced = _keyed(ctx).reduce_by_key(lambda a, b: a + b)
    merged = reduced.filter(_value_positive).union(reduced.keys())
    diags = [d for d in analyze_bag(merged) if d.code == "NPL301"]
    assert len(diags) == 1
    assert "ReduceByKey" in diags[0].node
    assert diags[0].node.startswith("#")
    assert diags[0].severity == "warning"


def test_npl301_silent_when_cached(ctx):
    reduced = _keyed(ctx).reduce_by_key(lambda a, b: a + b).cache()
    merged = reduced.filter(_value_positive).union(reduced.keys())
    assert "NPL301" not in codes(analyze_bag(merged))


def test_npl301_silent_for_parallelize_reuse(ctx):
    base = ctx.bag_of([1, 2, 3])
    merged = base.map(lambda x: x + 1).union(base.map(lambda x: x - 1))
    assert "NPL301" not in codes(analyze_bag(merged))


def test_cogroup_self_join_counts_two_consumers(ctx):
    keyed = _keyed(ctx).map(lambda kv: kv)
    both = keyed.cogroup(keyed)
    assert "NPL301" in codes(analyze_bag(both))


# ---------------------------------------------------------------------------
# NPL302: pushable key-only filter
# ---------------------------------------------------------------------------


def test_npl302_key_only_filter_above_shuffle(ctx):
    reduced = _keyed(ctx).reduce_by_key(lambda a, b: a + b)
    diags = analyze_bag(reduced.filter(_key_is_zero))
    matching = [d for d in diags if d.code == "NPL302"]
    assert len(matching) == 1
    assert "Filter" in matching[0].node


def test_npl302_silent_for_value_reading_predicate(ctx):
    reduced = _keyed(ctx).reduce_by_key(lambda a, b: a + b)
    diags = analyze_bag(reduced.filter(_value_positive))
    assert "NPL302" not in codes(diags)


def test_npl302_silent_for_filter_over_narrow_node(ctx):
    diags = analyze_bag(_keyed(ctx).filter(_key_is_zero))
    assert "NPL302" not in codes(diags)


# ---------------------------------------------------------------------------
# NPL303: broadcast build side exceeds memory (simulated-OOM prediction)
# ---------------------------------------------------------------------------


def _heavy_ctx():
    config = dataclasses.replace(
        laptop_config(), bytes_per_record=float(10 ** 6)
    )
    return EngineContext(config)


def _broadcast_join(ctx, records=1000):
    left = ctx.bag_of(list(range(records))).map(lambda x: (x, x))
    right = ctx.bag_of(list(range(records))).map(lambda x: (x, -x))
    return left.join(right, strategy="broadcast")


def test_npl303_predicts_simulated_oom():
    joined = _broadcast_join(_heavy_ctx())
    matching = [d for d in analyze_bag(joined) if d.code == "NPL303"]
    assert len(matching) == 1
    assert matching[0].severity == "error"
    assert "SimulatedOutOfMemory" in matching[0].message
    assert "BroadcastJoin" in matching[0].node


def test_npl303_silent_when_build_side_fits(ctx):
    joined = _broadcast_join(ctx, records=10)
    assert "NPL303" not in codes(analyze_bag(joined))


def test_npl303_skipped_without_config():
    joined = _broadcast_join(_heavy_ctx())
    assert "NPL303" not in codes(analyze_plan(joined.node, config=None))


def test_npl303_covers_cross_broadcast():
    ctx = _heavy_ctx()
    left = ctx.bag_of(list(range(2000)))
    right = ctx.bag_of(list(range(2000)))
    crossed = left.cross(right)
    assert "NPL303" in codes(analyze_bag(crossed))


# ---------------------------------------------------------------------------
# NPL304: redundant repartition
# ---------------------------------------------------------------------------


def test_npl304_double_coalesce(ctx):
    bag = ctx.bag_of(list(range(64))).coalesce(8).coalesce(2)
    matching = [d for d in analyze_bag(bag) if d.code == "NPL304"]
    assert len(matching) == 1
    assert "Coalesce" in matching[0].node


def test_shuffle_over_same_partitioning_is_npl401_not_npl304(ctx):
    # The wide-over-wide case moved from NPL304 (smell) to NPL401
    # (proven layout reuse, elided by the engine); exactly one of the
    # two codes must fire so one defect yields one diagnostic.
    bag = (
        _keyed(ctx)
        .reduce_by_key(lambda a, b: a + b, 4)
        .group_by_key(4)
    )
    found = codes(analyze_bag(bag))
    assert "NPL401" in found
    assert "NPL304" not in found


def test_npl304_silent_when_partition_counts_differ(ctx):
    bag = (
        _keyed(ctx)
        .reduce_by_key(lambda a, b: a + b, 4)
        .group_by_key(8)
    )
    assert "NPL304" not in codes(analyze_bag(bag))


def test_clean_plan_has_no_diagnostics(ctx):
    bag = _keyed(ctx).reduce_by_key(lambda a, b: a + b).map_values(abs)
    assert analyze_bag(bag) == []


# ---------------------------------------------------------------------------
# Bag.collect(lint=...)
# ---------------------------------------------------------------------------


def test_collect_lint_error_raises_before_execution():
    joined = _broadcast_join(_heavy_ctx())
    with pytest.raises(AnalysisError) as err:
        joined.collect(lint="error")
    assert "NPL303" in [d.code for d in err.value.diagnostics]


def test_collect_lint_true_means_error():
    joined = _broadcast_join(_heavy_ctx())
    with pytest.raises(AnalysisError):
        joined.collect(lint=True)


def test_collect_lint_warn_runs_and_warns(ctx):
    reduced = _keyed(ctx).reduce_by_key(lambda a, b: a + b)
    merged = reduced.filter(_value_positive).union(reduced.keys())
    with pytest.warns(UserWarning, match="NPL301"):
        result = merged.collect(lint="warn")
    assert result


def test_collect_lint_strict_raises_on_warnings(ctx):
    reduced = _keyed(ctx).reduce_by_key(lambda a, b: a + b)
    merged = reduced.filter(_value_positive).union(reduced.keys())
    with pytest.raises(AnalysisError):
        merged.collect(lint="strict")


def test_collect_lint_default_off(ctx):
    reduced = _keyed(ctx).reduce_by_key(lambda a, b: a + b)
    merged = reduced.filter(_value_positive).union(reduced.keys())
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert merged.collect()


def test_collect_lint_rejects_unknown_mode(ctx):
    bag = ctx.bag_of([1, 2, 3])
    with pytest.raises(PlanError):
        bag.collect(lint="everything")


def test_collect_lint_clean_plan_collects(ctx):
    bag = ctx.bag_of([3, 1, 2]).map(lambda x: x * 2)
    assert sorted(bag.collect(lint="strict")) == [2, 4, 6]

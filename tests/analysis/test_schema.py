"""Whole-plan schema & shape inference (:mod:`repro.analysis.schema`).

Covers the lattice, UDF abstract interpretation, plan-level inference,
the columnar / hashability verdicts, chain commitment, and at least one
positive and one negative case for every NPL6xx diagnostic plus the
NPL001 skip notice.
"""

from dataclasses import replace

import pytest

from repro.analysis.schema import (
    ANY,
    BOOL,
    ChainSchema,
    FLOAT,
    INT,
    ListType,
    NONE,
    STR,
    ScalarType,
    TupleType,
    UnhashableType,
    chain_schema,
    clear_schema_cache,
    columnar_verdict,
    hashable_verdict,
    infer_schemas,
    infer_udf_schema,
    join_types,
    schema_diagnostics,
    schema_notes,
)
from repro.engine import laptop_config
from repro.engine import plan as p


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_schema_cache()
    yield
    clear_schema_cache()


# ----------------------------------------------------------------------
# module-level UDFs (lambdas on their own lines, so source is located)
# ----------------------------------------------------------------------


def _double(x):
    return x * 2


def _to_pair(x):
    return (x, x / 2)


def _to_str(x):
    return "n=%d" % x


def _to_list_key(x):
    return ([x], x)


def _add(a, b):
    return a + b


def _helper_square(x):
    return x * x


def _calls_helper(x):
    return _helper_square(x) + 1


def _swap(pair):
    key, value = pair
    return (value, key)


def _explode(x):
    return [x, x + 1, x + 2]


def _recursive(x):
    return _recursive(x)


# ----------------------------------------------------------------------
# lattice
# ----------------------------------------------------------------------


class TestLattice:
    def test_join_identical(self):
        assert join_types(INT, INT) == INT
        assert join_types(
            TupleType((INT, FLOAT)), TupleType((INT, FLOAT))
        ) == TupleType((INT, FLOAT))

    def test_int_float_join_is_any(self):
        # Mixed columns are not provably lossless, so the join refuses
        # to claim float.
        assert join_types(INT, FLOAT) is ANY

    def test_bool_never_decays_to_int(self):
        assert join_types(BOOL, INT) is ANY
        assert BOOL != INT

    def test_any_absorbs(self):
        assert join_types(ANY, INT) is ANY
        assert join_types(TupleType((INT,)), ANY) is ANY

    def test_tuple_join_elementwise(self):
        joined = join_types(
            TupleType((INT, INT)), TupleType((INT, FLOAT))
        )
        assert joined == TupleType((INT, ANY))

    def test_mismatched_arity_joins_to_any(self):
        assert join_types(
            TupleType((INT, INT)), TupleType((INT,))
        ) is ANY

    def test_list_join(self):
        assert join_types(ListType(INT), ListType(INT)) == ListType(INT)
        assert join_types(ListType(INT), ListType(STR)) == ListType(ANY)

    def test_reprs_are_stable(self):
        assert repr(ANY) == "?"
        assert repr(TupleType((INT, FLOAT))) == "(int, float)"
        assert repr(TupleType((INT,))) == "(int,)"
        assert repr(ListType(INT)) == "[int]"
        assert repr(UnhashableType("dict")) == "dict"


# ----------------------------------------------------------------------
# verdicts
# ----------------------------------------------------------------------


class TestVerdicts:
    def test_scalar_numeric_proven(self):
        assert columnar_verdict(INT) == (True, ("i", True))
        assert columnar_verdict(FLOAT) == (True, ("f", True))

    def test_scalar_non_numeric_refuted(self):
        for schema in (STR, BOOL, NONE):
            verdict, spec = columnar_verdict(schema)
            assert verdict is False
            assert spec is None

    def test_tuple_proven(self):
        assert columnar_verdict(TupleType((INT, FLOAT))) == (
            True, ("if", False)
        )

    def test_tuple_with_any_is_unknown(self):
        verdict, spec = columnar_verdict(TupleType((INT, ANY)))
        assert verdict is None

    def test_refuting_element_beats_unknown(self):
        # A str slot refutes even when another slot is unknown.
        verdict, _ = columnar_verdict(TupleType((ANY, STR)))
        assert verdict is False

    def test_wide_tuple_refuted(self):
        verdict, _ = columnar_verdict(TupleType((INT,) * 17))
        assert verdict is False

    def test_any_is_unknown(self):
        assert columnar_verdict(ANY) == (None, None)

    def test_hashable_verdicts(self):
        assert hashable_verdict(INT) is True
        assert hashable_verdict(TupleType((INT, STR))) is True
        assert hashable_verdict(ListType(INT)) is False
        assert hashable_verdict(UnhashableType("dict")) is False
        assert hashable_verdict(TupleType((INT, ListType(INT)))) is False
        assert hashable_verdict(ANY) is None
        assert hashable_verdict(TupleType((INT, ANY))) is None


# ----------------------------------------------------------------------
# UDF abstract interpretation
# ----------------------------------------------------------------------


class TestUdfInference:
    def test_arithmetic(self):
        assert infer_udf_schema(_double, (INT,)) == INT
        assert infer_udf_schema(_double, (FLOAT,)) == FLOAT

    def test_division_is_float(self):
        assert infer_udf_schema(_to_pair, (INT,)) == TupleType(
            (INT, FLOAT)
        )

    def test_string_formatting(self):
        assert infer_udf_schema(_to_str, (INT,)) == STR

    def test_transitive_helper_call(self):
        assert infer_udf_schema(_calls_helper, (INT,)) == INT

    def test_tuple_unpack_in_body(self):
        assert infer_udf_schema(
            _swap, (TupleType((INT, STR)),)
        ) == TupleType((STR, INT))

    def test_flat_map_semantics(self):
        assert infer_udf_schema(_explode, (INT,), flat=True) == INT

    def test_lambda_inference(self):
        key_by_parity = lambda x: (x % 2, x)  # noqa: E731
        assert infer_udf_schema(key_by_parity, (INT,)) == TupleType(
            (INT, INT)
        )

    def test_comparison_is_bool(self):
        is_even = lambda x: x % 2 == 0  # noqa: E731
        assert infer_udf_schema(is_even, (INT,)) == BOOL

    def test_control_flow_answers_any(self):
        def branchy(x):
            if x > 0:
                return x
            return -x

        assert infer_udf_schema(branchy, (INT,)) is ANY

    def test_recursion_answers_any(self):
        assert infer_udf_schema(_recursive, (INT,)) is ANY

    def test_unreadable_source_is_skipped(self):
        skips = []
        assert infer_udf_schema(str, (INT,), skips=skips) is ANY
        assert str in skips

    def test_skips_resurface_on_cache_hits(self):
        first = []
        infer_udf_schema(str, (INT,), skips=first)
        second = []
        infer_udf_schema(str, (INT,), skips=second)
        assert second == first

    def test_builtin_conversions(self):
        to_float = lambda x: float(x)  # noqa: E731
        assert infer_udf_schema(to_float, (INT,)) == FLOAT
        measure = lambda s: len(s)  # noqa: E731
        assert infer_udf_schema(measure, (STR,)) == INT

    def test_subscript_on_tuple(self):
        first = lambda pair: pair[0]  # noqa: E731
        assert infer_udf_schema(
            first, (TupleType((STR, INT)),)
        ) == STR

    def test_comprehension_over_range(self):
        spread = lambda x: [i * 2 for i in range(x)]  # noqa: E731
        assert infer_udf_schema(spread, (INT,)) == ListType(INT)


# ----------------------------------------------------------------------
# plan-level inference
# ----------------------------------------------------------------------


class TestPlanInference:
    def test_parallelize_scalar_scan(self, ctx):
        bag = ctx.bag_of([1, 2, 3])
        assert infer_schemas(bag.node).schema_of(bag.node) == INT

    def test_parallelize_scan_is_exact_about_bool(self, ctx):
        bag = ctx.bag_of([1, 2, True])
        # bool is not int: a mixed scan answers ANY, never a kind that
        # would let True encode as 1.
        assert infer_schemas(bag.node).schema_of(bag.node) is ANY

    def test_parallelize_tuple_scan(self, ctx):
        bag = ctx.bag_of([(1, "a"), (2, "b")])
        assert infer_schemas(bag.node).schema_of(bag.node) == TupleType(
            (INT, STR)
        )

    def test_map_filter_chain(self, ctx):
        bag = ctx.bag_of([1, 2, 3]).map(_to_pair).filter(_truthy)
        assert infer_schemas(bag.node).schema_of(bag.node) == TupleType(
            (INT, FLOAT)
        )

    def test_flat_map(self, ctx):
        bag = ctx.bag_of([1, 2]).flat_map(_explode)
        assert infer_schemas(bag.node).schema_of(bag.node) == INT

    def test_group_by_key(self, ctx):
        bag = ctx.bag_of([(1, 2.0), (1, 3.0)]).group_by_key()
        assert infer_schemas(bag.node).schema_of(bag.node) == TupleType(
            (INT, ListType(FLOAT))
        )

    def test_reduce_by_key_fixpoint(self, ctx):
        bag = ctx.bag_of([(1, 2), (1, 3)]).reduce_by_key(_add)
        assert infer_schemas(bag.node).schema_of(bag.node) == TupleType(
            (INT, INT)
        )

    def test_zip_with_unique_id(self, ctx):
        bag = ctx.bag_of(["a", "b"]).zip_with_unique_id()
        assert infer_schemas(bag.node).schema_of(bag.node) == TupleType(
            (STR, INT)
        )

    def test_union_joins_branches(self, ctx):
        left = ctx.bag_of([1, 2])
        right = ctx.bag_of([3, 4])
        merged = left.union(right)
        assert infer_schemas(merged.node).schema_of(merged.node) == INT

    def test_cogroup_shape(self, ctx):
        left = ctx.bag_of([(1, 2.0)])
        right = ctx.bag_of([(1, "x")])
        merged = left.cogroup(right)
        assert infer_schemas(merged.node).schema_of(
            merged.node
        ) == TupleType(
            (INT, TupleType((ListType(FLOAT), ListType(STR))))
        )

    def test_map_partitions_is_any(self, ctx):
        bag = ctx.bag_of([1, 2]).map_partitions(_identity_part)
        assert infer_schemas(bag.node).schema_of(bag.node) is ANY


def _truthy(pair):
    return pair[0] > 0


def _identity_part(part):
    return part


# ----------------------------------------------------------------------
# chain commitment
# ----------------------------------------------------------------------


class TestChainSchema:
    def _chain(self, bag):
        """The fused elementwise chain ending at ``bag.node``."""
        chain = []
        node = bag.node
        while isinstance(node, (p.Map, p.Filter, p.FlatMap)):
            chain.append(node)
            node = node.child
        chain.reverse()
        return chain

    def test_proven_chain(self, ctx):
        bag = ctx.bag_of([1, 2, 3]).map(_to_pair)
        schema = chain_schema(self._chain(bag))
        assert schema.input_verdict is True
        assert schema.input_spec == ("i", True)
        assert schema.output_verdict is True
        assert schema.output_spec == ("if", False)
        assert schema.spec_token() == "si->tif"

    def test_refuted_chain(self, ctx):
        bag = ctx.bag_of([1, 2, 3]).map(_to_str)
        schema = chain_schema(self._chain(bag))
        assert schema.output_verdict is False
        assert schema.spec_token() == "si->no"

    def test_unknown_chain(self, ctx):
        bag = ctx.bag_of([1, 2.5]).map(_double)
        schema = chain_schema(self._chain(bag))
        assert schema.input_verdict is None
        assert schema.output_verdict is None
        assert schema.spec_token() == "?->?"

    def test_spec_token_is_fingerprint_safe(self):
        schema = ChainSchema(True, ("ii", False), False, None,
                             TupleType((INT, INT)), STR)
        assert schema.spec_token() == "tii->no"


# ----------------------------------------------------------------------
# NPL6xx diagnostics
# ----------------------------------------------------------------------


def _codes(diags):
    return [d.code for d in diags]


class TestSchemaDiagnostics:
    def test_npl601_key_type_mismatch(self, ctx):
        left = ctx.bag_of([(1, "a")])
        right = ctx.bag_of([("x", 2.0)])
        diags = schema_diagnostics(left.cogroup(right).node)
        assert "NPL601" in _codes(diags)
        found = [d for d in diags if d.code == "NPL601"][0]
        assert "int" in found.message and "str" in found.message

    def test_npl601_not_fired_for_numeric_kinds(self, ctx):
        # 1 == 1.0 hash-match: int vs float keys are compatible.
        left = ctx.bag_of([(1, "a")])
        right = ctx.bag_of([(1.5, "b")])
        diags = schema_diagnostics(left.cogroup(right).node)
        assert "NPL601" not in _codes(diags)

    def test_npl602_union_arity_mismatch(self, ctx):
        pairs = ctx.bag_of([(1, 2)])
        flat = ctx.bag_of([3, 4])
        diags = schema_diagnostics(pairs.union(flat).node)
        assert "NPL602" in _codes(diags)

    def test_npl602_allows_kind_differences(self, ctx):
        # Same shape, different scalar kinds: allowed (heterogeneous
        # unions are legal), so no finding.
        ints = ctx.bag_of([1, 2])
        floats = ctx.bag_of([1.5, 2.5])
        diags = schema_diagnostics(ints.union(floats).node)
        assert "NPL602" not in _codes(diags)

    def test_npl603_non_hashable_key(self, ctx):
        bag = ctx.bag_of([1, 2]).map(_to_list_key).group_by_key()
        diags = schema_diagnostics(bag.node)
        assert "NPL603" in _codes(diags)
        found = [d for d in diags if d.code == "NPL603"][0]
        assert found.severity == "error"

    def test_npl603_not_fired_for_tuple_keys(self, ctx):
        bag = ctx.bag_of([((1, 2), 3)]).group_by_key()
        diags = schema_diagnostics(bag.node)
        assert "NPL603" not in _codes(diags)

    def test_npl604_refuted_chain_with_compile_on(self, ctx):
        config = replace(laptop_config(), compile_pipelines=True)
        bag = ctx.bag_of([1, 2]).map(_to_str)
        diags = schema_diagnostics(bag.node, config)
        assert "NPL604" in _codes(diags)

    def test_npl604_gated_on_compile_flag(self, ctx):
        # Without compile_pipelines no probe would run, so there is
        # nothing to report.
        bag = ctx.bag_of([1, 2]).map(_to_str)
        diags = schema_diagnostics(bag.node, laptop_config())
        assert "NPL604" not in _codes(diags)

    def test_npl001_skip_notice_with_inference_on(self, ctx):
        config = replace(
            laptop_config(),
            compile_pipelines=True,
            schema_inference=True,
        )
        bag = ctx.bag_of([1, 2]).map(str)
        diags = schema_diagnostics(bag.node, config)
        npl001 = [d for d in diags if d.code == "NPL001"]
        assert len(npl001) == 1
        assert "str" in npl001[0].message

    def test_npl001_gated_on_schema_inference(self, ctx):
        bag = ctx.bag_of([1, 2]).map(str)
        diags = schema_diagnostics(bag.node, laptop_config())
        assert "NPL001" not in _codes(diags)

    def test_clean_plan_has_no_findings(self, ctx):
        bag = (
            ctx.bag_of([1, 2, 3])
            .map(_to_pair)
            .reduce_by_key(_add_floats)
        )
        assert schema_diagnostics(bag.node) == []


def _add_floats(a, b):
    return a + b


# ----------------------------------------------------------------------
# explain notes & plan lint integration
# ----------------------------------------------------------------------


class TestNotesAndLint:
    def test_schema_notes_cover_every_node(self, ctx):
        bag = ctx.bag_of([1, 2]).map(_to_pair).group_by_key()
        notes = schema_notes(bag.node)
        nodes = list(p.iter_nodes_ordered(bag.node))
        assert len(notes) == len(nodes)
        assert all(text.startswith("schema=") for text in notes.values())

    def test_explain_schema_flag(self, ctx):
        text = ctx.bag_of([1, 2]).map(_to_pair).explain(schema=True)
        assert "schema=(int, float)" in text
        assert "schema=int" in text

    def test_explain_flags_compose_in_stable_order(self, ctx):
        bag = ctx.bag_of([(1, 2)]).map(_swap).group_by_key()
        text = bag.explain(
            properties=True, effects=True, compile=True, schema=True
        )
        # The Map node carries all four note families; they must render
        # in the fixed order properties -> effects -> compile -> schema.
        line = next(
            ln for ln in text.splitlines()
            if "Map" in ln and "schema=" in ln
        )
        markers = [
            line.index("pure"),
            line.index("compiled="),
            line.index("schema="),
        ]
        assert markers == sorted(markers)
        # Running the flags one at a time yields the same annotations.
        solo = bag.explain(schema=True)
        assert "schema=(int, [int])" in solo

    def test_plan_lint_includes_schema_findings(self, ctx):
        from repro.analysis import analyze_plan

        bag = ctx.bag_of([1, 2]).map(_to_list_key).group_by_key()
        codes = _codes(analyze_plan(bag.node, ctx.config))
        assert "NPL603" in codes

    def test_collect_lint_error_raises_on_npl603(self, ctx):
        from repro.errors import AnalysisError

        bag = ctx.bag_of([1, 2]).map(_to_list_key).group_by_key()
        with pytest.raises(AnalysisError):
            bag.collect(lint="error")

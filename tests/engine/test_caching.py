"""Caching and within-job memoization."""

import pytest

from repro.engine import laptop_config


@pytest.fixture
def config():
    # These tests count UDF calls through driver-side list appends,
    # which only works when tasks run in this process -- pin the serial
    # backend so a $REPRO_BACKEND=process suite run cannot break them.
    return laptop_config(backend="serial")


class TestCache:
    def test_cached_bag_not_recomputed(self, ctx):
        calls = []

        def traced(x):
            calls.append(x)
            return x

        bag = ctx.bag_of([1, 2, 3]).map(traced).cache()
        bag.count()
        first = len(calls)
        bag.count()
        assert len(calls) == first

    def test_uncached_bag_recomputed_per_job(self, ctx):
        calls = []

        def traced(x):
            calls.append(x)
            return x

        bag = ctx.bag_of([1, 2, 3]).map(traced)
        bag.count()
        bag.count()
        assert len(calls) == 6

    def test_diamond_computed_once_within_job(self, ctx):
        calls = []

        def traced(x):
            calls.append(x)
            return (x % 2, x)

        keyed = ctx.bag_of([1, 2, 3, 4]).map(traced)
        joined = keyed.join(keyed.map_values(lambda v: v * 10))
        joined.collect()
        # The shared `keyed` node is evaluated once despite two consumers.
        assert len(calls) == 4

    def test_uncache_recomputes(self, ctx):
        calls = []
        bag = ctx.bag_of([1]).map(calls.append).cache()
        bag.count()
        bag.uncache()
        bag.count()
        assert len(calls) == 2

    def test_cached_results_match_uncached(self, ctx):
        bag = ctx.bag_of(range(10)).map(lambda x: x * 2)
        uncached = sorted(bag.collect())
        bag.cache()
        bag.count()
        assert sorted(bag.collect()) == uncached

    def test_cache_survives_derived_plans(self, ctx):
        bag = ctx.bag_of(range(4)).cache()
        bag.count()
        derived = bag.map(lambda x: x + 1)
        assert sorted(derived.collect()) == [1, 2, 3, 4]

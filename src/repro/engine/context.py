"""The engine context: entry point for creating bags and running jobs.

An :class:`EngineContext` is the analog of a ``SparkContext``: it owns the
cluster configuration, the task runtime (scheduler + backend), the
executor, the execution trace, and the cost model that converts the
trace into simulated seconds.
"""

import itertools
import threading
import time

from ..observe import resolve_tracer
from ..observe.events import KIND_BROADCAST
from .bag import Bag
from .broadcast import Broadcast, check_broadcast_fits
from .config import ClusterConfig, laptop_config
from .costmodel import CostModel
from .executor import Executor
from .metrics import ExecutionTrace
from .plan import Parallelize
from .runtime.scheduler import TaskScheduler
from .validate import validate_trace


class EngineContext:
    """Owns one simulated cluster and everything that runs on it.

    Args:
        config: The simulated cluster; defaults to a small laptop-friendly
            configuration suitable for tests.
        trace: Tracing spec for :mod:`repro.observe` -- ``None`` (follow
            the ``REPRO_TRACE`` environment variable; unset means off),
            ``True``/``"memory"`` (in-memory ring buffer), a file path
            (JSON-lines sink), ``"null"`` (enabled but discarding), a
            sink, or a ready :class:`~repro.observe.Tracer`.  The
            resolved tracer is available as ``ctx.tracer``.
    """

    def __init__(self, config=None, trace=None):
        self.config = config if config is not None else laptop_config()
        if not isinstance(self.config, ClusterConfig):
            raise TypeError("config must be a ClusterConfig")
        self.trace = ExecutionTrace()
        self.tracer = resolve_tracer(trace)
        self.runtime = TaskScheduler(self.config, tracer=self.tracer)
        self.executor = Executor(
            self.config, self.trace, self.runtime, tracer=self.tracer
        )
        self.cost_model = CostModel(self.config)
        # Accounting-window tickets (begin_job/end_job).  itertools
        # counters are atomic under the GIL, so concurrent worker slots
        # can open windows without a dedicated lock.
        self._tickets = itertools.count(1)

    @property
    def fault_injector(self):
        """The runtime's deterministic fault-injection hook."""
        return self.runtime.fault_injector

    @property
    def optimizer_decisions(self):
        """Engine-level optimizer decisions recorded so far (e.g.
        shuffle elisions), as :class:`repro.core.optimizer.Decision`
        records."""
        return self.executor.decisions

    # ------------------------------------------------------------------
    # Bag creation
    # ------------------------------------------------------------------

    def bag_of(self, data, num_partitions=None):
        """Create a bag from driver-side data."""
        data = list(data)
        if num_partitions is None:
            num_partitions = min(
                self.config.default_parallelism, max(1, len(data))
            )
        return Bag(self, Parallelize(data, num_partitions), num_partitions)

    def empty_bag(self):
        return self.bag_of([], num_partitions=1)

    def range_bag(self, n, num_partitions=None):
        """A bag of the integers ``0 .. n-1``."""
        return self.bag_of(range(n), num_partitions)

    # ------------------------------------------------------------------
    # Broadcast
    # ------------------------------------------------------------------

    def broadcast(self, value, num_records=None):
        """Ship a read-only value to every executor.

        Args:
            value: The payload.
            num_records: How many paper-scale records the payload
                represents (defaults to ``len(value)`` for sized
                collections, else 1).
        """
        if num_records is None:
            try:
                num_records = len(value)
            except TypeError:
                num_records = 1
        check_broadcast_fits(num_records, self.config)
        if self.trace.jobs:
            self.trace.jobs[-1].broadcast_records += num_records
        if self.tracer.enabled:
            self.tracer.instant(
                "broadcast:driver", KIND_BROADCAST,
                what="explicit broadcast", records=num_records,
                bytes=int(num_records * self.config.bytes_per_record),
            )
        return Broadcast(value, num_records)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def simulated_seconds(self):
        """Simulated wall-clock seconds for everything run so far."""
        return self.cost_model.simulated_seconds(self.trace)

    def measured_task_seconds(self):
        """*Measured* task wall-clock recorded by the runtime so far.

        This is real time actually spent in task bodies on this
        machine (summed across tasks, so with a process backend it can
        exceed elapsed time), not the simulated cluster seconds.
        """
        return self.trace.measured_task_seconds

    def cost_breakdown(self):
        return self.cost_model.trace_cost(self.trace)

    def reset_trace(self):
        """Start a fresh measurement window (keeps caches)."""
        self.trace.reset()

    # ------------------------------------------------------------------
    # Bounded per-job accounting (long-lived contexts)
    # ------------------------------------------------------------------

    def begin_job(self):
        """Open a per-job accounting window on the calling thread.

        A long-lived context (the :mod:`repro.serve` daemon) runs an
        unbounded stream of jobs; without windows, ``ExecutionTrace``
        and the optimizer decision log grow forever.  Every engine job
        submitted between ``begin_job()`` and the matching
        ``end_job()`` -- on this thread, or on threads spawned by
        ``ctx.gather`` inside the window -- is tagged with the window's
        ticket; ``end_job`` extracts exactly those jobs, summarizes
        them, and (by default) removes them from the trace, so retained
        state stays bounded no matter how many jobs run.

        Windows on different threads do not interfere: each worker slot
        of a service opens its own window and extracts only its own
        jobs.  Nesting on one thread is not supported (the inner window
        would steal the outer one's jobs).

        Returns:
            A :class:`JobWindow` token to pass to :meth:`end_job`.
        """
        ticket = next(self._tickets)
        self.trace.set_job_ticket(ticket)
        return JobWindow(ticket)

    def end_job(self, window, drain=True):
        """Close an accounting window; return its :class:`JobAccounting`.

        Args:
            window: The token from :meth:`begin_job`.
            drain: Remove the window's jobs from the trace (default).
                ``drain=False`` keeps them -- for harnesses that still
                want the full trace (the bench regression gate) -- at
                the price of unbounded growth.

        Draining also empties the executor's optimizer-decision log
        into the accounting.  With concurrent windows the decision log
        cannot be attributed per window (decisions are recorded on
        dispatch-pool threads), so a window's ``decisions`` are
        best-effort: everything logged since the last drain.
        """
        self.trace.set_job_ticket(-1)
        jobs = self.trace.take_ticket_jobs(window.ticket, drain=drain)
        if drain:
            decisions = self.executor.drain_decisions()
            # The window's plan graphs are garbage once the caller
            # drops them; reclaim their layout-registry entries so the
            # registry tracks only live (cached) subtrees.
            self.executor.sweep_layouts()
        else:
            decisions = list(self.executor.decisions)
        return JobAccounting(jobs, self.cost_model, decisions)

    def validate_trace(self):
        """Assert the trace invariants (:mod:`repro.engine.validate`).

        The executor already validates each job as it completes (unless
        ``config.validate_traces`` is off); this re-checks the whole
        trace, e.g. before handing it to the cost model.
        """
        return validate_trace(self.trace)

    def gather(self, *thunks):
        """Run several job-submitting thunks concurrently.

        Each thunk is a zero-argument callable that may run any number
        of actions against this context; all thunks run at once, on one
        thread each, sharing the scheduler and backend -- so on the
        process backend their stages interleave over the same worker
        pool.  Returns the thunks' return values in submission order.

        Trace determinism: jobs land in the trace in completion order,
        so after the concurrent window closes the trace is stably
        re-sorted by submission slot
        (:meth:`~repro.engine.metrics.ExecutionTrace.restore_submission_order`)
        and job ids renumbered -- the recorded trace is the one serial
        submission would have produced, job for job.  When tracing,
        each slot's driver/job spans go to their own ``driver-<slot>``
        lane.

        If several thunks raise, the exception of the earliest slot
        propagates.  Thunks evaluating the *same* not-yet-materialized
        cached bag may duplicate its evaluation (both compute it, both
        write the same partitions -- wasteful, never wrong: evaluation
        is pure and the scheduler's metrics mutators are locked).
        """
        if not thunks:
            return []
        start = self.trace.next_job_id
        results = [None] * len(thunks)
        errors = [None] * len(thunks)
        # Jobs submitted by the thunks belong to the caller's accounting
        # window (if one is open): propagate the ticket into the fresh
        # threads, whose thread-locals start empty.
        ticket = self.trace.current_ticket()

        def entry(slot, thunk):
            self.trace.set_job_slot(slot)
            self.trace.set_job_ticket(ticket)
            try:
                results[slot] = thunk()
            except BaseException as exc:  # noqa: BLE001 -- re-raised below
                errors[slot] = exc
            finally:
                self.trace.set_job_slot(-1)
                self.trace.set_job_ticket(-1)

        threads = [
            threading.Thread(
                target=entry, args=(slot, thunk),
                name="repro-gather-%d" % slot,
            )
            for slot, thunk in enumerate(thunks)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        self.trace.restore_submission_order(start)
        for error in errors:
            if error is not None:
                raise error
        return results

    def measure(self):
        """Context manager measuring a block's simulated *and* real time::

            with ctx.measure() as measurement:
                program(ctx)
            print(measurement.seconds)           # simulated cluster time
            print(measurement.measured_seconds)  # real wall-clock of block

        The surrounding trace is preserved: jobs run inside the block
        are appended as usual, and the measurement reports only their
        cost.  ``measured_seconds`` is driver wall-clock of the whole
        block; ``task_seconds`` is the runtime's summed per-task time
        for the block's jobs.
        """
        return _Measurement(self)

    def close(self):
        """Release runtime resources and flush/close the tracer's sink
        (worker pools are process-shared and survive; closing them is
        handled at interpreter exit)."""
        self.runtime.close()
        self.tracer.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        return (
            "EngineContext(machines=%d, cores=%d, %s)"
            % (
                self.config.machines,
                self.config.total_cores,
                self.trace.summary(),
            )
        )


class JobWindow:
    """Token for one open ``begin_job``/``end_job`` accounting window."""

    __slots__ = ("ticket",)

    def __init__(self, ticket):
        self.ticket = ticket

    def __repr__(self):
        return "JobWindow(ticket=%d)" % self.ticket


class JobAccounting:
    """Summary of the engine jobs run inside one accounting window.

    Everything is computed eagerly from the window's
    :class:`~repro.engine.metrics.JobMetrics` at ``end_job`` time, so
    the accounting stays valid after the jobs are drained from the
    trace.  The job objects themselves are retained (``jobs``) for
    per-stage reporting (:func:`repro.observe.entry_from_jobs`).
    """

    __slots__ = (
        "jobs", "decisions", "simulated_seconds",
        "measured_task_seconds", "num_stages", "total_records",
        "shuffle_records", "shuffle_records_saved", "task_retries",
    )

    def __init__(self, jobs, cost_model, decisions=()):
        self.jobs = list(jobs)
        self.decisions = list(decisions)
        self.simulated_seconds = sum(
            cost_model.job_cost(job).total_s for job in self.jobs
        )
        self.measured_task_seconds = sum(
            job.measured_task_seconds for job in self.jobs
        )
        self.num_stages = sum(len(job.stages) for job in self.jobs)
        self.total_records = sum(job.total_records for job in self.jobs)
        self.shuffle_records = sum(
            job.total_shuffle_records for job in self.jobs
        )
        self.shuffle_records_saved = sum(
            stage.shuffle_records_saved
            for job in self.jobs
            for stage in job.stages
        )
        self.task_retries = sum(job.task_retries for job in self.jobs)

    @property
    def num_jobs(self):
        return len(self.jobs)

    def to_dict(self):
        """JSON-ready summary (the service's per-job JSONL record)."""
        return {
            "jobs": self.num_jobs,
            "stages": self.num_stages,
            "records": self.total_records,
            "shuffle_records": self.shuffle_records,
            "shuffle_records_saved": self.shuffle_records_saved,
            "simulated_seconds": self.simulated_seconds,
            "measured_task_seconds": self.measured_task_seconds,
            "task_retries": self.task_retries,
            "decisions": len(self.decisions),
        }

    def __repr__(self):
        return (
            "JobAccounting(jobs=%d, stages=%d, simulated=%.3fs)"
            % (self.num_jobs, self.num_stages, self.simulated_seconds)
        )


class _Measurement:
    """Simulated and measured seconds of the jobs in a ``with`` block.

    Attributes:
        seconds: Simulated cluster seconds (cost model over the trace).
        measured_seconds: Real driver wall-clock of the block.
        task_seconds: Real per-task wall-clock summed over the block's
            jobs (recorded by the task runtime).
    """

    def __init__(self, ctx):
        self._ctx = ctx
        self._start_job = None
        self._start_time = None
        self.seconds = None
        self.measured_seconds = None
        self.task_seconds = None

    def __enter__(self):
        self._start_job = self._ctx.trace.num_jobs
        self._start_time = time.perf_counter()
        return self

    def __exit__(self, exc_type, _exc, _tb):
        self.measured_seconds = time.perf_counter() - self._start_time
        cost = 0.0
        tasks = 0.0
        for job in self._ctx.trace.jobs[self._start_job:]:
            cost += self._ctx.cost_model.job_cost(job).total_s
            tasks += job.measured_task_seconds
        self.seconds = cost
        self.task_seconds = tasks
        return False

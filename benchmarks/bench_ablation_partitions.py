"""Ablation (DESIGN.md): InnerScalar partition-count selection (Sec. 8.1).

Not a paper figure; isolates one of the three optimizations.  Expected:
sizing InnerScalar bags to the tag cardinality beats the engine-default
partition count, most visibly at few inner computations where thousands
of near-empty tasks would otherwise be scheduled.
"""

from repro.bench import figures

import os

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


def test_ablation_partition_counts(figure_benchmark):
    sweep = figure_benchmark(figures.ablation_partition_counts, SCALE)
    for x in sweep.x_values():
        auto = sweep.seconds("auto (Sec. 8.1)", x)
        default = sweep.seconds("engine default", x)
        assert auto < default

"""Cross-system integration: every execution strategy, same answers.

These are the reproduction's end-to-end guarantees: for each task, the
Matryoshka (flattened) program, both workarounds, the DIQL plan where
applicable, and the sequential reference all agree on randomized inputs.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.inner_parallel import group_locally
from repro.data import grouped_edges, visits_log
from repro.engine import EngineContext, laptop_config
from repro.tasks import bounce_rate as br
from repro.tasks import pagerank as pr


@settings(max_examples=10, deadline=None)
@given(
    num_days=st.integers(min_value=1, max_value=10),
    total=st.integers(min_value=20, max_value=200),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_bounce_rate_all_systems_agree(num_days, total, seed):
    records = visits_log(num_days, total, seed=seed)
    truth = br.bounce_rate_reference(records)
    ctx = EngineContext(laptop_config())
    outputs = {
        "nested": dict(
            br.bounce_rate_nested(ctx.bag_of(records)).collect()
        ),
        "flat": dict(
            br.bounce_rate_flat(ctx.bag_of(records)).collect()
        ),
        "outer": dict(
            br.bounce_rate_outer(ctx.bag_of(records)).collect()
        ),
        "inner": dict(
            br.bounce_rate_inner(ctx, group_locally(records))
        ),
        "diql": dict(
            br.bounce_rate_diql(ctx.bag_of(records)).collect()
        ),
    }
    for system, got in outputs.items():
        assert got == truth, "system %s diverged" % system


@settings(max_examples=6, deadline=None)
@given(
    num_groups=st.integers(min_value=1, max_value=5),
    total=st.integers(min_value=20, max_value=120),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_pagerank_all_systems_agree(num_groups, total, seed):
    records = grouped_edges(num_groups, total, seed=seed)
    groups = group_locally(records)
    truth = {
        gid: pr.pagerank_reference(groups[gid], iterations=4)[0]
        for gid in groups
    }
    ctx = EngineContext(laptop_config())
    nested = {}
    for gid, (v, rank) in pr.pagerank_nested(
        ctx.bag_of(records), iterations=4
    ).collect():
        nested.setdefault(gid, {})[v] = rank
    outer = {
        gid: dict(ranks)
        for gid, ranks in pr.pagerank_outer(
            ctx.bag_of(records), iterations=4
        ).collect()
    }
    inner = dict(pr.pagerank_inner(ctx, groups, iterations=4))
    for system, got in (
        ("nested", nested), ("outer", outer), ("inner", inner),
    ):
        assert set(got) == set(truth), system
        for gid in truth:
            assert set(got[gid]) == set(truth[gid]), (system, gid)
            for v in truth[gid]:
                assert got[gid][v] == pytest.approx(
                    truth[gid][v]
                ), (system, gid, v)


class TestScalingInvariants:
    """The structural properties that drive every figure."""

    def test_matryoshka_job_count_constant_in_groups(self):
        for task_records in (
            [visits_log(g, 120, seed=4) for g in (2, 10)],
        ):
            counts = []
            for records in task_records:
                ctx = EngineContext(laptop_config())
                br.bounce_rate_nested(ctx.bag_of(records)).collect()
                counts.append(ctx.trace.num_jobs)
            assert counts[0] == counts[1]

    def test_inner_parallel_job_count_linear_in_groups(self):
        counts = []
        for groups in (2, 8):
            records = visits_log(groups, 160, seed=4)
            ctx = EngineContext(laptop_config())
            br.bounce_rate_inner(ctx, group_locally(records))
            counts.append(ctx.trace.num_jobs)
        assert counts[1] == 4 * counts[0]

    def test_matryoshka_pagerank_jobs_scale_with_iterations_only(self):
        counts = []
        for iterations in (2, 4):
            records = grouped_edges(4, 60, seed=4)
            ctx = EngineContext(laptop_config())
            pr.pagerank_nested(
                ctx.bag_of(records), iterations=iterations
            ).collect()
            counts.append(ctx.trace.num_jobs)
        per_iteration = (counts[1] - counts[0]) / 2
        assert per_iteration <= 3

    def test_outer_parallel_single_job_chain(self):
        records = visits_log(6, 120, seed=4)
        ctx = EngineContext(laptop_config())
        br.bounce_rate_outer(ctx.bag_of(records)).collect()
        assert ctx.trace.num_jobs == 1

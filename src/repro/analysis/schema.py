"""Whole-plan record schema & shape inference (NPL6xx).

A bottom-up abstract interpretation that assigns every plan node an
inferred *record schema*: scalar kinds (``int`` / ``float`` / ``str`` /
``bool`` / ``none``), fixed-arity tuple shapes, list-of-element shapes
for grouped values, and ``?`` for anything unprovable.  Types flow

* through **UDF ASTs** -- lambdas in fluent chains, ``@nested_udf``
  bodies, and transitively-called helpers, located with
  :func:`repro.analysis.properties.function_ast` and resolved with the
  effect-analysis runtime resolver (PR 8); and
* through **every plan operator** -- map/filter/flat_map propagate
  through the UDF, shuffles split and recombine key/value pairs,
  unions join branch schemas, zip appends an ``int`` id column.

Verdicts are tri-state like the NPL4xx/5xx passes: a schema with no
``?`` anywhere is *proven*, a shape that can never satisfy a predicate
(e.g. a ``str`` record can never be columnar-encoded) is *refuted*,
and everything else is *unknown*.  Soundness rule: the interpretation
only ever claims a concrete type when every execution must produce it;
when in doubt it answers ``ANY``.  In particular ``bool`` never decays
to ``int`` (``True`` must not be encoded as ``1``) and ``int`` joined
with ``float`` is ``ANY``, not ``float`` (mixed columns are not
statically provable as lossless).

Three consumers:

* **NPL6xx diagnostics** (:func:`schema_diagnostics`) -- NPL601
  join/cogroup key-type mismatch, NPL602 union shape mismatch, NPL603
  statically non-hashable shuffle keys, NPL604 refuted-columnar
  chains -- via the CLI, ``--format github`` CI lint, and
  ``Bag.explain(schema=True)`` (:func:`schema_notes`).
* **Columnar pre-commitment** (:func:`chain_schema`) -- the executor
  skips the per-partition encode probe when a chain's output schema is
  proven columnar, and skips encoding entirely when it is refuted.
* **Schema-specialized codegen** -- a proven chain *input* schema lets
  the generated loop read ``ColumnarPartition`` buffers directly; the
  schema spec is folded into the chain fingerprint
  (:mod:`repro.engine.codegen`).
"""

import ast
import types

from ..engine import plan as p
from .diagnostics import make_diagnostic, sort_key
from .effects import runtime_resolver
from .properties import function_ast

__all__ = [
    "ANY",
    "BOOL",
    "ChainSchema",
    "FLOAT",
    "INT",
    "ListType",
    "NONE",
    "PlanSchemas",
    "STR",
    "ScalarType",
    "SchemaType",
    "TupleType",
    "UnhashableType",
    "chain_schema",
    "clear_schema_cache",
    "columnar_verdict",
    "hashable_verdict",
    "infer_schemas",
    "infer_udf_schema",
    "join_types",
    "schema_diagnostics",
    "schema_notes",
]

# Driver-side data scans are exact-type checks run at C speed
# (``set(map(type, data))``); beyond these caps the scan answers ANY
# rather than charge per-job time proportional to huge driver datasets.
_SCALAR_SCAN_CAP = 262144
_TUPLE_SCAN_CAP = 4096

#: Transitive helper-call depth limit (mirrors the effects analysis).
_MAX_DEPTH = 5

#: Iterations granted to the reduce_by_key accumulator fixpoint before
#: it collapses to ANY.
_ACC_ITERATIONS = 3


# ----------------------------------------------------------------------
# The abstract type lattice
# ----------------------------------------------------------------------


class SchemaType:
    """Base of the abstract record-type lattice."""

    __slots__ = ()


class AnyType(SchemaType):
    """Top: nothing is known about the record shape."""

    __slots__ = ()

    def __repr__(self):
        return "?"

    def __eq__(self, other):
        return isinstance(other, AnyType)

    def __hash__(self):
        return hash(AnyType)


#: The single top element; compare with ``is ANY``.
ANY = AnyType()


class ScalarType(SchemaType):
    """An exact scalar kind: int / float / str / bool / none."""

    __slots__ = ("kind",)

    KINDS = ("int", "float", "str", "bool", "none")

    def __init__(self, kind):
        if kind not in self.KINDS:
            raise ValueError("unknown scalar kind %r" % (kind,))
        self.kind = kind

    def __repr__(self):
        return self.kind

    def __eq__(self, other):
        return isinstance(other, ScalarType) and other.kind == self.kind

    def __hash__(self):
        return hash((ScalarType, self.kind))


INT = ScalarType("int")
FLOAT = ScalarType("float")
STR = ScalarType("str")
BOOL = ScalarType("bool")
NONE = ScalarType("none")


class TupleType(SchemaType):
    """A fixed-arity tuple; ``elements`` are the per-slot schemas."""

    __slots__ = ("elements",)

    def __init__(self, elements):
        self.elements = tuple(elements)

    def __repr__(self):
        if len(self.elements) == 1:
            return "(%r,)" % self.elements[0]
        return "(%s)" % ", ".join(repr(e) for e in self.elements)

    def __eq__(self, other):
        return (
            isinstance(other, TupleType)
            and other.elements == self.elements
        )

    def __hash__(self):
        return hash((TupleType, self.elements))


class ListType(SchemaType):
    """A homogeneous sequence (grouped values, comprehension results)."""

    __slots__ = ("element",)

    def __init__(self, element):
        self.element = element

    def __repr__(self):
        return "[%r]" % self.element

    def __eq__(self, other):
        return isinstance(other, ListType) and other.element == self.element

    def __hash__(self):
        return hash((ListType, self.element))


class UnhashableType(SchemaType):
    """A value that can never be a shuffle key (dict / set)."""

    __slots__ = ("kind",)

    def __init__(self, kind):
        self.kind = kind

    def __repr__(self):
        return self.kind

    def __eq__(self, other):
        return isinstance(other, UnhashableType) and other.kind == self.kind

    def __hash__(self):
        return hash((UnhashableType, self.kind))


def join_types(a, b):
    """Least upper bound of two schemas.

    Deliberately strict: ``int`` joined with ``float`` is ``ANY``
    (a mixed column is not provably lossless), and different
    constructors never merge.
    """
    if a is ANY or b is ANY:
        return ANY
    if a == b:
        return a
    if (
        isinstance(a, TupleType)
        and isinstance(b, TupleType)
        and len(a.elements) == len(b.elements)
    ):
        return TupleType(
            join_types(x, y) for x, y in zip(a.elements, b.elements)
        )
    if isinstance(a, ListType) and isinstance(b, ListType):
        return ListType(join_types(a.element, b.element))
    return ANY


def _join_all(schemas):
    result = None
    for schema in schemas:
        result = schema if result is None else join_types(result, schema)
    return ANY if result is None else result


# ----------------------------------------------------------------------
# Verdicts
# ----------------------------------------------------------------------

_COLUMNAR_KINDS = {"int": "i", "float": "f"}

# Mirrors repro.engine.columnar._MAX_ARITY.
_MAX_ARITY = 16


def columnar_verdict(schema):
    """``(verdict, spec)`` -- can records of ``schema`` be columnar?

    ``verdict`` is tri-state (True proven / False refuted / None
    unknown); on proof, ``spec`` is ``(kinds, scalar)`` matching
    :class:`repro.engine.columnar.ColumnarPartition` -- e.g.
    ``("if", False)`` for ``(int, float)`` records or ``("i", True)``
    for bare ints.
    """
    if schema is ANY:
        return None, None
    if isinstance(schema, ScalarType):
        code = _COLUMNAR_KINDS.get(schema.kind)
        if code is not None:
            return True, (code, True)
        return False, None
    if isinstance(schema, TupleType):
        if not schema.elements or len(schema.elements) > _MAX_ARITY:
            return False, None
        kinds = []
        unknown = False
        for element in schema.elements:
            if element is ANY:
                unknown = True
                continue
            if isinstance(element, ScalarType):
                code = _COLUMNAR_KINDS.get(element.kind)
                if code is not None:
                    kinds.append(code)
                    continue
            return False, None
        if unknown:
            return None, None
        return True, ("".join(kinds), False)
    return False, None


def hashable_verdict(schema):
    """Tri-state: can records of ``schema`` be hashed as shuffle keys?"""
    if schema is ANY:
        return None
    if isinstance(schema, ScalarType):
        return True
    if isinstance(schema, (ListType, UnhashableType)):
        return False
    if isinstance(schema, TupleType):
        verdicts = [hashable_verdict(e) for e in schema.elements]
        if any(v is False for v in verdicts):
            return False
        if all(v is True for v in verdicts):
            return True
        return None
    return None


# ----------------------------------------------------------------------
# UDF abstract interpretation
# ----------------------------------------------------------------------

_UDF_SCHEMA_CACHE = {}


def clear_schema_cache():
    """Drop the per-code-object UDF schema memo (for tests)."""
    _UDF_SCHEMA_CACHE.clear()


def infer_udf_schema(fn, arg_schemas, flat=False, skips=None):
    """Abstract result type of ``fn`` applied to ``arg_schemas``.

    With ``flat=True`` the result is the *element* schema of the
    returned collection (flat_map semantics).  Functions whose source
    is unavailable are appended to ``skips`` (when given) and answer
    ``ANY``.
    """
    if skips is None:
        skips = []
    return _infer_callable(
        fn, tuple(arg_schemas), bool(flat), frozenset(), _MAX_DEPTH, skips
    )


def _infer_callable(fn, arg_schemas, flat, stack, depth, skips):
    fn = getattr(fn, "original", fn)
    code = getattr(fn, "__code__", None)
    if code is None:
        skips.append(fn)
        return ANY
    if code in stack or depth <= 0:
        return ANY
    key = (code, tuple(repr(s) for s in arg_schemas), flat)
    cached = _UDF_SCHEMA_CACHE.get(key)
    if cached is not None:
        schema, skipped = cached
        skips.extend(skipped)
        return schema
    node = function_ast(fn)
    local_skips = []
    if node is None:
        local_skips.append(fn)
        schema = ANY
    else:
        ctx = _Scope(
            env={},
            resolver=runtime_resolver(fn),
            stack=stack | {code},
            depth=depth,
            skips=local_skips,
        )
        schema = _infer_from_ast(node, arg_schemas, flat, ctx)
    _UDF_SCHEMA_CACHE[key] = (schema, tuple(local_skips))
    skips.extend(local_skips)
    return schema


class _Scope:
    """Evaluation context: bindings, name resolver, recursion guards."""

    __slots__ = ("env", "resolver", "stack", "depth", "skips")

    def __init__(self, env, resolver, stack, depth, skips):
        self.env = env
        self.resolver = resolver
        self.stack = stack
        self.depth = depth
        self.skips = skips

    def child(self, env):
        return _Scope(env, self.resolver, self.stack, self.depth, self.skips)


def _infer_from_ast(node, arg_schemas, flat, ctx):
    args = node.args
    if args.vararg or args.kwarg or args.kwonlyargs:
        return ANY
    params = [a.arg for a in getattr(args, "posonlyargs", [])]
    params += [a.arg for a in args.args]
    if len(params) != len(arg_schemas):
        return ANY
    ctx.env.update(zip(params, arg_schemas))
    if isinstance(node, ast.Lambda):
        result = _eval(node.body, ctx)
    else:
        result = _infer_body(node, ctx)
        if result is None:
            return ANY
    return _flatten(result) if flat else result


def _infer_body(node, ctx):
    """Result schema of a FunctionDef body, or None when unprovable.

    Straight-line bodies only: assignments, expression statements, and
    returns.  Control flow (if/for/while/try) and generators answer
    None -- the caller treats the result as ANY.
    """
    returned = None
    for stmt in node.body:
        if isinstance(stmt, ast.Return):
            value = NONE if stmt.value is None else _eval(stmt.value, ctx)
            returned = (
                value if returned is None else join_types(returned, value)
            )
        elif isinstance(stmt, ast.Assign):
            value = _eval(stmt.value, ctx)
            for target in stmt.targets:
                _bind(target, value, ctx)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                _bind(stmt.target, _eval(stmt.value, ctx), ctx)
        elif isinstance(stmt, ast.AugAssign):
            if not isinstance(stmt.target, ast.Name):
                return None
            current = ctx.env.get(stmt.target.id, ANY)
            ctx.env[stmt.target.id] = _binop(
                stmt.op, current, _eval(stmt.value, ctx)
            )
        elif isinstance(stmt, (ast.Expr, ast.Pass)):
            if any(
                isinstance(n, (ast.Yield, ast.YieldFrom))
                for n in ast.walk(stmt)
            ):
                return None
        else:
            return None
    return NONE if returned is None else returned


def _bind(target, value, ctx):
    if isinstance(target, ast.Name):
        ctx.env[target.id] = value
        return
    if isinstance(target, ast.Tuple) and all(
        isinstance(e, ast.Name) for e in target.elts
    ):
        if (
            isinstance(value, TupleType)
            and len(value.elements) == len(target.elts)
        ):
            for name, element in zip(target.elts, value.elements):
                ctx.env[name.id] = element
            return
        for name in target.elts:
            ctx.env[name.id] = ANY
        return
    # Subscript / attribute / starred targets: poison nothing, prove
    # nothing -- any Name read through them already answers ANY.


def _flatten(schema):
    """Element schema of an iterated value (flat_map semantics)."""
    if isinstance(schema, ListType):
        return schema.element
    if isinstance(schema, TupleType):
        return _join_all(schema.elements)
    if isinstance(schema, ScalarType) and schema.kind == "str":
        return STR
    return ANY


def _const_schema(value):
    kind = type(value)
    if kind is bool:
        return BOOL
    if kind is int:
        return INT
    if kind is float:
        return FLOAT
    if kind is str:
        return STR
    if value is None:
        return NONE
    return ANY


_NUMERIC = ("int", "float", "bool")


def _numeric_kind(schema):
    if isinstance(schema, ScalarType) and schema.kind in _NUMERIC:
        return schema.kind
    return None


def _binop(op, left, right):
    lk, rk = _numeric_kind(left), _numeric_kind(right)
    if lk is not None and rk is not None:
        if isinstance(op, ast.Div):
            return FLOAT
        if isinstance(op, ast.Pow):
            return ANY  # int ** negative-int is a float
        if isinstance(
            op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.LShift, ast.RShift)
        ):
            # Arithmetic on bools yields int (True + True == 2).
            if lk in ("int", "bool") and rk in ("int", "bool"):
                return INT
            return ANY
        if isinstance(
            op, (ast.Add, ast.Sub, ast.Mult, ast.Mod, ast.FloorDiv)
        ):
            return FLOAT if "float" in (lk, rk) else INT
        return ANY
    if left == STR:
        if isinstance(op, ast.Mod):
            return STR
        if isinstance(op, ast.Add) and right == STR:
            return STR
        if isinstance(op, ast.Mult) and rk in ("int", "bool"):
            return STR
        return ANY
    if isinstance(op, ast.Add):
        if isinstance(left, TupleType) and isinstance(right, TupleType):
            return TupleType(left.elements + right.elements)
        if isinstance(left, ListType) and isinstance(right, ListType):
            return ListType(join_types(left.element, right.element))
    return ANY


def _unaryop(op, operand):
    if isinstance(op, ast.Not):
        return BOOL
    kind = _numeric_kind(operand)
    if kind is None:
        return ANY
    if isinstance(op, (ast.USub, ast.UAdd)):
        return INT if kind in ("int", "bool") else FLOAT
    if isinstance(op, ast.Invert):
        return INT if kind in ("int", "bool") else ANY
    return ANY


def _eval(node, ctx):
    """Abstract value of an expression; ANY whenever unprovable."""
    if isinstance(node, ast.Constant):
        return _const_schema(node.value)
    if isinstance(node, ast.Name):
        return ctx.env.get(node.id, ANY)
    if isinstance(node, ast.Tuple):
        if any(isinstance(e, ast.Starred) for e in node.elts):
            return ANY
        return TupleType(_eval(e, ctx) for e in node.elts)
    if isinstance(node, ast.List):
        if any(isinstance(e, ast.Starred) for e in node.elts):
            return ListType(ANY)
        return ListType(_join_all(_eval(e, ctx) for e in node.elts))
    if isinstance(node, ast.Set):
        return UnhashableType("set")
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return UnhashableType("dict")
    if isinstance(node, ast.BinOp):
        return _binop(node.op, _eval(node.left, ctx), _eval(node.right, ctx))
    if isinstance(node, ast.UnaryOp):
        return _unaryop(node.op, _eval(node.operand, ctx))
    if isinstance(node, ast.Compare):
        return BOOL
    if isinstance(node, ast.BoolOp):
        # and/or return an operand, not a bool.
        return _join_all(_eval(v, ctx) for v in node.values)
    if isinstance(node, ast.IfExp):
        return join_types(_eval(node.body, ctx), _eval(node.orelse, ctx))
    if isinstance(node, ast.Call):
        return _call(node, ctx)
    if isinstance(node, ast.Subscript):
        return _subscript(node, ctx)
    if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
        return _comprehension(node, ctx)
    if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
        return STR
    return ANY


def _call(node, ctx):
    if node.keywords or any(
        isinstance(a, ast.Starred) for a in node.args
    ):
        return ANY
    func = node.func
    if not isinstance(func, ast.Name) or func.id in ctx.env:
        return ANY
    resolved = ctx.resolver._lookup(func.id)
    if resolved is None:
        return ANY
    arg_schemas = [_eval(a, ctx) for a in node.args]
    if resolved is int:
        return INT
    if resolved is float:
        return FLOAT
    if resolved is bool:
        return BOOL
    if resolved is str:
        return STR
    if resolved is len:
        return INT
    if resolved is abs and len(arg_schemas) == 1:
        kind = _numeric_kind(arg_schemas[0])
        if kind is None:
            return ANY
        return INT if kind in ("int", "bool") else FLOAT
    if resolved is round and len(arg_schemas) == 1:
        return INT
    if resolved in (min, max) and len(arg_schemas) >= 2:
        return _join_all(arg_schemas)
    if resolved is divmod and len(arg_schemas) == 2:
        if all(_numeric_kind(s) == "int" for s in arg_schemas):
            return TupleType((INT, INT))
        return ANY
    if resolved is range:
        return ListType(INT)
    if resolved is tuple and len(arg_schemas) == 1:
        if isinstance(arg_schemas[0], TupleType):
            return arg_schemas[0]
        return ANY
    if resolved is list and len(arg_schemas) == 1:
        return ListType(_flatten(arg_schemas[0]))
    unwrapped = getattr(resolved, "original", resolved)
    if isinstance(unwrapped, types.FunctionType):
        return _infer_callable(
            unwrapped,
            tuple(arg_schemas),
            False,
            ctx.stack,
            ctx.depth - 1,
            ctx.skips,
        )
    return ANY


def _subscript(node, ctx):
    value = _eval(node.value, ctx)
    index = node.slice
    if isinstance(index, ast.Slice):
        if isinstance(value, ListType):
            return value
        if (
            isinstance(value, TupleType)
            and index.step is None
            and _slice_bound_ok(index.lower)
            and _slice_bound_ok(index.upper)
        ):
            lower = index.lower.value if index.lower is not None else None
            upper = index.upper.value if index.upper is not None else None
            return TupleType(value.elements[lower:upper])
        if value == STR:
            return STR
        return ANY
    if isinstance(value, TupleType):
        if (
            isinstance(index, ast.Constant)
            and type(index.value) is int
            and -len(value.elements) <= index.value < len(value.elements)
        ):
            return value.elements[index.value]
        return ANY
    if isinstance(value, ListType):
        return value.element
    if value == STR:
        return STR
    return ANY


def _slice_bound_ok(bound):
    return bound is None or (
        isinstance(bound, ast.Constant) and type(bound.value) is int
    )


def _comprehension(node, ctx):
    env = dict(ctx.env)
    scope = ctx.child(env)
    for generator in node.generators:
        if getattr(generator, "is_async", False):
            return ListType(ANY)
        element = _flatten(_eval(generator.iter, scope))
        _bind(generator.target, element, scope)
    return ListType(_eval(node.elt, scope))


# ----------------------------------------------------------------------
# Plan-level inference
# ----------------------------------------------------------------------


class PlanSchemas:
    """Per-node inferred schemas plus the UDFs inference had to skip."""

    def __init__(self, schemas, skips):
        self.schemas = schemas
        self.skips = skips

    def schema_of(self, node):
        return self.schemas.get(id(node), ANY)


def infer_schemas(root):
    """Bottom-up schema inference over the plan reachable from ``root``.

    Iterative post-order (children before parents), so arbitrarily deep
    plans do not overflow the Python stack -- the same discipline as
    the executor and the property/effect passes.
    """
    schemas = {}
    skips = []
    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            schemas[id(node)] = _node_schema(node, schemas, skips)
            continue
        if id(node) in schemas:
            continue
        stack.append((node, True))
        for child in node.children:
            if id(child) not in schemas:
                stack.append((child, False))
    return PlanSchemas(schemas, skips)


def _node_schema(node, schemas, skips):
    def of(child):
        return schemas.get(id(child), ANY)

    if isinstance(node, p.Parallelize):
        return _data_schema(node.data)
    if isinstance(node, p.Map):
        return infer_udf_schema(node.fn, (of(node.child),), skips=skips)
    if isinstance(node, p.Filter):
        return of(node.child)
    if isinstance(node, p.FlatMap):
        return infer_udf_schema(
            node.fn, (of(node.child),), flat=True, skips=skips
        )
    if isinstance(node, p.MapPartitions):
        return ANY
    if isinstance(node, p.ZipWithUniqueId):
        return TupleType((of(node.child), INT))
    if isinstance(node, p.Coalesce):
        return of(node.child)
    if isinstance(node, p.Union):
        return _join_all(of(child) for child in node.children)
    if isinstance(node, p.ReduceByKey):
        key, value = _pair_parts(of(node.child))
        return TupleType((key, _reduce_fixpoint(node.fn, value, skips)))
    if isinstance(node, p.GroupByKey):
        key, value = _pair_parts(of(node.child))
        return TupleType((key, ListType(value)))
    if isinstance(node, p.CoGroup):
        lk, lv = _pair_parts(of(node.left))
        rk, rv = _pair_parts(of(node.right))
        return TupleType(
            (join_types(lk, rk), TupleType((ListType(lv), ListType(rv))))
        )
    if isinstance(node, p.BroadcastJoin):
        lk, lv = _pair_parts(of(node.left))
        rk, rv = _pair_parts(of(node.right))
        return TupleType((join_types(lk, rk), TupleType((lv, rv))))
    if isinstance(node, p.CrossBroadcast):
        return TupleType((of(node.left), of(node.right)))
    return ANY


def _pair_parts(schema):
    """Key/value split of a keyed-record schema."""
    if isinstance(schema, TupleType) and len(schema.elements) == 2:
        return schema.elements
    return ANY, ANY


def _reduce_fixpoint(fn, value, skips):
    """Accumulator schema of a reduce: iterate to a fixpoint or ANY."""
    acc = value
    for _ in range(_ACC_ITERATIONS):
        step = infer_udf_schema(fn, (acc, value), skips=skips)
        merged = join_types(acc, step)
        if merged == acc:
            return acc
        acc = merged
    return ANY


def _data_schema(data):
    if not data or len(data) > _SCALAR_SCAN_CAP:
        return ANY
    kinds = set(map(type, data))
    if len(kinds) != 1:
        return ANY
    kind = kinds.pop()
    if kind is bool:
        return BOOL
    if kind is int:
        return INT
    if kind is float:
        return FLOAT
    if kind is str:
        return STR
    if kind is tuple:
        return _tuple_data_schema(data)
    if kind is list:
        return ListType(ANY)
    if kind is dict:
        return UnhashableType("dict")
    if kind is set:
        return UnhashableType("set")
    if kind is type(None):
        return NONE
    return ANY


def _tuple_data_schema(data):
    if len(data) > _TUPLE_SCAN_CAP:
        return ANY
    arities = set(map(len, data))
    if len(arities) != 1:
        return ANY
    arity = arities.pop()
    return TupleType(
        _data_schema([record[i] for record in data]) for i in range(arity)
    )


# ----------------------------------------------------------------------
# Chain commitment (executor / codegen entry point)
# ----------------------------------------------------------------------


class ChainSchema:
    """Columnar commitment for one fused elementwise chain.

    ``input_verdict`` / ``input_spec`` describe the chain's *input*
    records (drives direct-read codegen); ``output_verdict`` /
    ``output_spec`` describe its *output* records (drives the
    commit / skip / probe storage decision).  Specs are
    ``(kinds, scalar)`` pairs as in :func:`columnar_verdict`.
    """

    __slots__ = (
        "input_verdict",
        "input_spec",
        "output_verdict",
        "output_spec",
        "input_schema",
        "output_schema",
    )

    def __init__(self, input_verdict, input_spec, output_verdict,
                 output_spec, input_schema, output_schema):
        self.input_verdict = input_verdict
        self.input_spec = input_spec
        self.output_verdict = output_verdict
        self.output_spec = output_spec
        self.input_schema = input_schema
        self.output_schema = output_schema

    def spec_token(self):
        """Stable text folded into the codegen chain fingerprint."""
        return "%s->%s" % (
            _spec_text(self.input_verdict, self.input_spec),
            _spec_text(self.output_verdict, self.output_spec),
        )


def _spec_text(verdict, spec):
    if verdict is True:
        kinds, scalar = spec
        return "%s%s" % ("s" if scalar else "t", kinds)
    return "no" if verdict is False else "?"


def chain_schema(chain):
    """The :class:`ChainSchema` for a fused chain of plan nodes.

    ``chain`` is the executor's fused node list (map/filter/flat_map,
    first-to-last); the chain input is ``chain[0].child``.
    """
    inferred = infer_schemas(chain[-1])
    input_schema = inferred.schema_of(chain[0].child)
    output_schema = inferred.schema_of(chain[-1])
    iv, ispec = columnar_verdict(input_schema)
    ov, ospec = columnar_verdict(output_schema)
    return ChainSchema(iv, ispec, ov, ospec, input_schema, output_schema)


# ----------------------------------------------------------------------
# Explain notes and NPL6xx diagnostics
# ----------------------------------------------------------------------


def schema_notes(root):
    """``{id(node): "schema=..."}`` annotations for ``explain()``."""
    inferred = infer_schemas(root)
    return {
        id(node): "schema=%r" % (inferred.schema_of(node),)
        for node in p.iter_nodes_ordered(root)
    }


def schema_diagnostics(root, config=None):
    """NPL6xx findings (plus NPL001 skip notices) for one plan.

    NPL604 (refuted-columnar chain) only fires when the config enables
    ``compile_pipelines`` -- without the flag no probe would run, so
    there is nothing to skip.  NPL001 skip notices only fire when the
    config enables ``schema_inference``, mirroring how NPL504 is gated
    on ``optimize_caching``.
    """
    inferred = infer_schemas(root)
    ids = p.assign_node_ids(root)
    parts = p.partition_counts(root)

    def ref(node):
        return p.describe_node(node, ids, parts)

    diags = []
    for node in p.iter_nodes_ordered(root):
        if isinstance(node, (p.CoGroup, p.BroadcastJoin)):
            lk, _ = _pair_parts(inferred.schema_of(node.left))
            rk, _ = _pair_parts(inferred.schema_of(node.right))
            if _definite_mismatch(lk, rk):
                diags.append(make_diagnostic(
                    "NPL601",
                    "join keys of %s have mismatched types: left is %r, "
                    "right is %r; no records can match" % (ref(node), lk, rk),
                ))
        if isinstance(node, p.Union):
            branches = [
                (child, inferred.schema_of(child)) for child in node.children
            ]
            for (left, ls), (right, rs) in zip(branches, branches[1:]):
                if _shape_mismatch(ls, rs):
                    diags.append(make_diagnostic(
                        "NPL602",
                        "union branches of %s have mismatched shapes: "
                        "%s yields %r but %s yields %r"
                        % (ref(node), ref(left), ls, ref(right), rs),
                    ))
                    break
        key_inputs = ()
        if isinstance(node, (p.ReduceByKey, p.GroupByKey)):
            key_inputs = (node.child,)
        elif isinstance(node, p.CoGroup):
            key_inputs = (node.left, node.right)
        for child in key_inputs:
            key, _ = _pair_parts(inferred.schema_of(child))
            if hashable_verdict(key) is False:
                diags.append(make_diagnostic(
                    "NPL603",
                    "shuffle key of %s is statically non-hashable "
                    "(%r); the shuffle will fail on the first record"
                    % (ref(node), key),
                ))
    if config is not None and getattr(config, "compile_pipelines", False):
        from ..engine import dag

        for unit in dag.plan_units(root):
            if not unit.chain:
                continue
            verdict, _spec = columnar_verdict(
                inferred.schema_of(unit.chain[-1])
            )
            if verdict is False:
                diags.append(make_diagnostic(
                    "NPL604",
                    "fused chain ending at %s has a refuted columnar "
                    "schema (%r); the per-partition encode probe is "
                    "skipped" % (
                        ref(unit.chain[-1]),
                        inferred.schema_of(unit.chain[-1]),
                    ),
                ))
    if config is not None and getattr(config, "schema_inference", False):
        seen = set()
        for fn in inferred.skips:
            name = getattr(fn, "__name__", repr(fn))
            if name in seen:
                continue
            seen.add(name)
            diags.append(make_diagnostic(
                "NPL001",
                "source of %r is unavailable or ambiguous (builtin, "
                "interactively defined, or several definitions on one "
                "line); schema inference treats its result as unknown"
                % name,
            ))
    return sorted(diags, key=sort_key)


def _definite_mismatch(a, b):
    """True only when two *known* key schemas can never hash-match."""
    if a is ANY or b is ANY:
        return False
    if isinstance(a, ScalarType) and isinstance(b, ScalarType):
        if a.kind == b.kind:
            return False
        # 1 == 1.0 == True hash-match across numeric kinds.
        return not (a.kind in _NUMERIC and b.kind in _NUMERIC)
    if isinstance(a, TupleType) and isinstance(b, TupleType):
        if len(a.elements) != len(b.elements):
            return True
        return any(
            _definite_mismatch(x, y)
            for x, y in zip(a.elements, b.elements)
        )
    if isinstance(a, ListType) and isinstance(b, ListType):
        return _definite_mismatch(a.element, b.element)
    return True


def _shape_mismatch(a, b):
    """Arity-level mismatch between union branches (kinds may differ)."""
    if a is ANY or b is ANY:
        return False
    a_tuple = isinstance(a, TupleType)
    b_tuple = isinstance(b, TupleType)
    if a_tuple != b_tuple:
        return True
    if a_tuple:
        return len(a.elements) != len(b.elements)
    return False

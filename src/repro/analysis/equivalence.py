"""Differential verification of shuffle elision.

The optimizer's shuffle elision (:mod:`repro.engine.optimize`) rewrites
physical execution; this module *proves* the rewrite on real programs
instead of assuming it.  Every program in the registry -- covering the
whole :mod:`repro.tasks` library -- is executed twice on seeded inputs,
once with ``optimize_shuffles=False`` and once with ``True``, and the
two runs must agree:

* identical collected results (canonicalized: collection order across
  partitions is not semantically meaningful, and driver-side float
  aggregation order can differ in the last ulps when an adopted layout
  places records on different partitions);
* consistent traces: same jobs, same per-job action/label, same stage
  kind sequence (an elided shuffle still opens its -- zero-volume --
  shuffle stage), and both traces pass
  :func:`repro.engine.validate.validate_trace`;
* the optimized run never shuffles *more*: per job, its shuffle volume
  is bounded by the unoptimized run's.

The same differential method also proves the DAG stage schedule
(:mod:`repro.engine.dag`): ``--compare schedulers`` runs every program
once with ``scheduler="serial"`` and once with ``scheduler="dag"`` and
demands identical canonicalized results, an identical trace signature
(which pins per-stage record counts and shuffle volumes exactly -- the
DAG schedule must move precisely the same records), and equal run
report totals up to the measured-time fields (wall-clock, per-task
seconds, and the straggler/retry counters derived from them, which
legitimately vary run to run).

A third comparison proves the effect-gated auto-cache rewrite
(:func:`repro.engine.optimize.plan_auto_caches`): ``--compare caching``
runs every program with ``optimize_caching`` off and on and demands
equivalent results, valid traces, and a cached run that is never
slower in simulated seconds.  Stage shapes are deliberately not
compared there -- replacing recompute stages with a ``cached`` read in
later jobs is the rewrite working as intended.

A fourth comparison proves the compiled fused pipelines
(:mod:`repro.engine.codegen`): ``--compare compiled`` runs every
program once with ``compile_pipelines`` off and on and demands
equivalent results, valid traces, an identical trace signature (the
generated loops must credit exactly the interpreter's per-operator
record counts, so simulated seconds are equal by construction), and
reports the measured wall-clock of both runs.

A fifth comparison proves whole-plan schema inference
(:mod:`repro.analysis.schema`): ``--compare schema`` runs every
program with ``compile_pipelines=True`` and ``schema_inference`` off
and on and demands equivalent results, valid traces, an identical
trace signature, and equal simulated seconds -- the columnar-direct
loops, probe-free encode commits, and refuted-chain interpreter
fallbacks the inference unlocks must be pure execution-strategy
changes, invisible to both values and the cost model.

Run it from the command line (CI does, on both backends and all
comparisons)::

    PYTHONPATH=src python -m repro.analysis.equivalence --backend serial
    PYTHONPATH=src python -m repro.analysis.equivalence --compare schedulers
    PYTHONPATH=src python -m repro.analysis.equivalence --compare caching
    PYTHONPATH=src python -m repro.analysis.equivalence --compare compiled
    PYTHONPATH=src python -m repro.analysis.equivalence --compare schema
"""

import argparse
import math
import sys
import time
from dataclasses import dataclass, replace

from ..engine.config import laptop_config
from ..engine.context import EngineContext
from ..engine.validate import validate_trace
from ..errors import PlanError

__all__ = [
    "EquivalenceError",
    "Verification",
    "library_programs",
    "verify_library",
    "verify_library_caching",
    "verify_library_compiled",
    "verify_library_schedules",
    "verify_library_schema",
    "verify_program",
    "verify_program_caching",
    "verify_program_compiled",
    "verify_program_schedules",
    "verify_program_schema",
    "main",
]


class EquivalenceError(PlanError):
    """Optimized and unoptimized execution of a program disagreed."""


@dataclass
class Verification:
    """Outcome of one verified program.

    Attributes:
        name: Registry name of the program.
        shuffle_records: Shuffle volume of the unoptimized run.
        shuffle_records_optimized: Shuffle volume of the optimized run.
        shuffle_records_saved: Volume the optimizer declared elided.
        elisions: Number of shuffle-elision decisions taken.
        seconds_interpreted: Measured wall-clock of the baseline run,
            only set by the ``compiled`` comparison.
        seconds_compiled: Measured wall-clock of the compiled run,
            only set by the ``compiled`` comparison.
    """

    name: str
    shuffle_records: int
    shuffle_records_optimized: int
    shuffle_records_saved: int
    elisions: int
    seconds_interpreted: float = 0.0
    seconds_compiled: float = 0.0


# ----------------------------------------------------------------------
# Program registry: the whole repro.tasks library, seeded and small
# ----------------------------------------------------------------------


def _bounce_rate_flat(ctx):
    from ..data.generators import visits_log
    from ..tasks.bounce_rate import bounce_rate_flat

    visits = ctx.bag_of(visits_log(4, 240, seed=7))
    return sorted(bounce_rate_flat(visits).collect())


def _bounce_rate_nested(ctx):
    from ..data.generators import visits_log
    from ..tasks.bounce_rate import bounce_rate_nested

    visits = ctx.bag_of(visits_log(3, 180, seed=7))
    return sorted(bounce_rate_nested(visits).collect())


def _bounce_rate_diql(ctx):
    from ..data.generators import visits_log
    from ..tasks.bounce_rate import bounce_rate_diql

    visits = ctx.bag_of(visits_log(3, 150, seed=9))
    return sorted(bounce_rate_diql(visits).collect())


def _pagerank_parallel(ctx):
    from ..data.generators import grouped_edges
    from ..tasks.pagerank import pagerank_parallel

    edges = [edge for _group, edge in grouped_edges(2, 80, seed=13)]
    return pagerank_parallel(ctx, edges, iterations=3)


def _pagerank_nested(ctx):
    from ..data.generators import grouped_edges
    from ..tasks.pagerank import pagerank_nested

    grouped = ctx.bag_of(grouped_edges(3, 90, seed=13))
    return sorted(pagerank_nested(grouped, iterations=3).collect())


def _connected_components(ctx):
    from ..data.generators import component_graph
    from ..tasks.graphs import connected_components

    edges = component_graph(3, 6, seed=3)
    labels = connected_components(ctx, ctx.bag_of(edges))
    return sorted(labels.collect())


def _avg_distances_nested(ctx):
    from ..data.generators import component_graph
    from ..tasks.avg_distances import avg_distances_nested

    edges = component_graph(2, 5, seed=3)
    return sorted(avg_distances_nested(ctx, edges).collect())


def _avg_distances_inner(ctx):
    from ..data.generators import component_graph
    from ..tasks.avg_distances import avg_distances_inner

    edges = component_graph(2, 4, seed=9)
    return sorted(avg_distances_inner(ctx, edges))


def _kmeans_nested(ctx):
    from ..data.generators import grouped_points, initial_centroids
    from ..tasks.kmeans import kmeans_nested_grouped

    points = ctx.bag_of(grouped_points(3, 90, 3, seed=11))
    configs = initial_centroids(3, 3, seed=11)
    result = kmeans_nested_grouped(points, configs, max_iterations=3)
    return sorted(result.collect())


def _kmeans_parallel(ctx):
    from ..data.generators import clustered_points, initial_centroids
    from ..tasks.kmeans import kmeans_parallel

    points = clustered_points(60, 3, seed=5)
    centroids = initial_centroids(3, 1, seed=5)[0][1]
    return kmeans_parallel(ctx, points, centroids, max_iterations=3)


def _matrix_row_norms(ctx):
    from ..tasks.matrix import matrix_bag, row_norms

    rows = [[(i + j) % 5 + 0.5 for j in range(6)] for i in range(8)]
    return sorted(row_norms(matrix_bag(ctx, rows)).collect())


def _matrix_vector(ctx):
    from ..tasks.matrix import matrix_bag, matrix_vector_product

    rows = [[(3 * i + j) % 7 for j in range(5)] for i in range(6)]
    vector = ctx.bag_of([(j, float(j + 1)) for j in range(5)])
    product = matrix_vector_product(matrix_bag(ctx, rows), vector)
    return sorted(product.collect())


def library_programs():
    """``(name, program)`` pairs covering every :mod:`repro.tasks`
    module; each program takes a fresh context and returns a
    deterministic-up-to-partitioning value."""
    return [
        ("bounce-rate-flat", _bounce_rate_flat),
        ("bounce-rate-nested", _bounce_rate_nested),
        ("bounce-rate-diql", _bounce_rate_diql),
        ("pagerank-parallel", _pagerank_parallel),
        ("pagerank-nested", _pagerank_nested),
        ("connected-components", _connected_components),
        ("avg-distances-nested", _avg_distances_nested),
        ("avg-distances-inner", _avg_distances_inner),
        ("kmeans-nested-grouped", _kmeans_nested),
        ("kmeans-parallel", _kmeans_parallel),
        ("matrix-row-norms", _matrix_row_norms),
        ("matrix-vector-product", _matrix_vector),
    ]


# ----------------------------------------------------------------------
# Result comparison
# ----------------------------------------------------------------------


def _blurred(value):
    """Round floats so ulp-level drift cannot change sort order."""
    if isinstance(value, float):
        return round(value, 6)
    if isinstance(value, tuple):
        return tuple(_blurred(v) for v in value)
    if isinstance(value, list):
        return [_blurred(v) for v in value]
    return value


def _canonical(value):
    """Sort lists recursively: cross-partition order is not meaning."""
    if isinstance(value, list):
        return sorted(
            (_canonical(v) for v in value),
            key=lambda v: repr(_blurred(v)),
        )
    if isinstance(value, tuple):
        return tuple(_canonical(v) for v in value)
    if isinstance(value, dict):
        return {k: _canonical(v) for k, v in value.items()}
    return value


def _approx_equal(a, b, rel_tol=1e-9, abs_tol=1e-12):
    if isinstance(a, float) or isinstance(b, float):
        if not isinstance(a, (int, float)) or not isinstance(
            b, (int, float)
        ):
            return False
        return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
    if isinstance(a, dict) and isinstance(b, dict):
        if set(a) != set(b):
            return False
        return all(_approx_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if type(a) is not type(b) or len(a) != len(b):
            return False
        return all(_approx_equal(x, y) for x, y in zip(a, b))
    return a == b


def results_equivalent(a, b):
    """Are two program results equal up to partitioning artifacts?

    Lists are compared as multisets (collection order across partitions
    is an executor artifact) and floats with a tight relative tolerance
    (driver-side folds sum partitions in layout order).
    """
    return _approx_equal(_canonical(a), _canonical(b))


# ----------------------------------------------------------------------
# Verification
# ----------------------------------------------------------------------


def _job_shuffle(job):
    return sum(stage.shuffle_read_records for stage in job.stages)


def _compare_traces(name, unoptimized, optimized):
    if len(unoptimized.jobs) != len(optimized.jobs):
        raise EquivalenceError(
            "%s: optimized run submitted %d jobs, unoptimized %d"
            % (name, len(optimized.jobs), len(unoptimized.jobs))
        )
    for base, opt in zip(unoptimized.jobs, optimized.jobs):
        where = "%s job %d" % (name, base.job_id)
        if (base.action, base.label) != (opt.action, opt.label):
            raise EquivalenceError(
                "%s: action/label diverged: %r vs %r"
                % (where, (base.action, base.label),
                   (opt.action, opt.label))
            )
        base_kinds = [stage.kind for stage in base.stages]
        opt_kinds = [stage.kind for stage in opt.stages]
        if base_kinds != opt_kinds:
            raise EquivalenceError(
                "%s: stage kinds diverged: %r vs %r"
                % (where, base_kinds, opt_kinds)
            )
        if _job_shuffle(opt) > _job_shuffle(base):
            raise EquivalenceError(
                "%s: the optimized run shuffles more (%d) than the "
                "unoptimized run (%d)"
                % (where, _job_shuffle(opt), _job_shuffle(base))
            )


def verify_program(program, config=None, name="<program>"):
    """Prove one program unchanged by shuffle elision.

    Args:
        program: Callable taking a fresh :class:`EngineContext` and
            returning a comparable value.
        config: Base config; ``optimize_shuffles`` is overridden per
            run.  Defaults to ``laptop_config()``.
        name: Label for error messages and the report line.

    Returns:
        A :class:`Verification` with the two runs' shuffle volumes.

    Raises:
        EquivalenceError: When results or traces diverge.
    """
    base_config = config if config is not None else laptop_config()
    runs = {}
    for optimize in (False, True):
        ctx = EngineContext(
            replace(base_config, optimize_shuffles=optimize)
        )
        result = program(ctx)
        validate_trace(ctx.trace)
        runs[optimize] = (result, ctx)
    base_result, base_ctx = runs[False]
    opt_result, opt_ctx = runs[True]
    _compare_traces(name, base_ctx.trace, opt_ctx.trace)
    if not results_equivalent(base_result, opt_result):
        raise EquivalenceError(
            "%s: optimized result differs from unoptimized result:\n"
            "%r\nvs\n%r" % (name, opt_result, base_result)
        )
    return Verification(
        name=name,
        shuffle_records=sum(
            _job_shuffle(job) for job in base_ctx.trace.jobs
        ),
        shuffle_records_optimized=sum(
            _job_shuffle(job) for job in opt_ctx.trace.jobs
        ),
        shuffle_records_saved=sum(
            stage.shuffle_records_saved
            for job in opt_ctx.trace.jobs
            for stage in job.stages
        ),
        elisions=len(opt_ctx.optimizer_decisions),
    )


def verify_library(config=None, only=None):
    """Verify every registry program; returns the Verification list."""
    verifications = []
    for name, program in library_programs():
        if only and not any(fragment in name for fragment in only):
            continue
        verifications.append(
            verify_program(program, config=config, name=name)
        )
    return verifications


# ----------------------------------------------------------------------
# Schedule verification (serial vs DAG stage scheduling)
# ----------------------------------------------------------------------

#: Run-report total fields derived from measured wall-clock; the only
#: totals allowed to differ between the serial and DAG schedules.
_MEASURED_TOTAL_KEYS = frozenset(
    {"retries", "stragglers", "failed_attempt_seconds"}
)


def _comparable_totals(entry):
    """An entry's run-report totals minus the measured-time fields."""
    totals = {
        key: value
        for key, value in entry["totals"].items()
        if key not in _MEASURED_TOTAL_KEYS
    }
    totals["simulated_seconds"] = entry["simulated_seconds"]
    return totals


def verify_program_schedules(program, config=None, name="<program>",
                             schedulers=("serial", "dag")):
    """Prove one program unchanged by DAG-parallel stage scheduling.

    Runs ``program`` once per schedule on a fresh context and demands:
    identical trace signatures (pinning stage kinds, per-task record
    counts, and shuffle read/write/saved volumes exactly), equivalent
    canonicalized results, and equal run-report totals up to the
    measured-time fields.

    Returns:
        A :class:`Verification`; ``shuffle_records`` is the serial
        run's volume and ``shuffle_records_optimized`` the DAG run's
        (the signature check makes them equal).

    Raises:
        EquivalenceError: When any compared quantity diverges.
    """
    from ..engine.validate import trace_signature
    from ..observe.report import entry_from_context

    base_config = config if config is not None else laptop_config()
    runs = []
    for scheduler in schedulers:
        ctx = EngineContext(replace(base_config, scheduler=scheduler))
        try:
            result = program(ctx)
            validate_trace(ctx.trace)
            runs.append(
                (
                    scheduler,
                    result,
                    trace_signature(ctx.trace),
                    entry_from_context(ctx, scheduler, name),
                    sum(_job_shuffle(job) for job in ctx.trace.jobs),
                    len(ctx.optimizer_decisions),
                )
            )
        finally:
            ctx.close()
    reference = runs[0]
    for run in runs[1:]:
        if run[2] != reference[2]:
            raise EquivalenceError(
                "%s: schedulers %r and %r produced different trace "
                "signatures:\n%r\nvs\n%r"
                % (name, reference[0], run[0], reference[2], run[2])
            )
        if not results_equivalent(run[1], reference[1]):
            raise EquivalenceError(
                "%s: scheduler %r result differs from %r:\n%r\nvs\n%r"
                % (name, run[0], reference[0], run[1], reference[1])
            )
        if _comparable_totals(run[3]) != _comparable_totals(
            reference[3]
        ):
            raise EquivalenceError(
                "%s: schedulers %r and %r report different totals:\n"
                "%r\nvs\n%r"
                % (
                    name, reference[0], run[0],
                    _comparable_totals(reference[3]),
                    _comparable_totals(run[3]),
                )
            )
    return Verification(
        name=name,
        shuffle_records=reference[4],
        shuffle_records_optimized=runs[-1][4],
        shuffle_records_saved=0,
        elisions=reference[5],
    )


def verify_library_schedules(config=None, only=None):
    """Schedule-verify every registry program; returns Verifications."""
    verifications = []
    for name, program in library_programs():
        if only and not any(fragment in name for fragment in only):
            continue
        verifications.append(
            verify_program_schedules(program, config=config, name=name)
        )
    return verifications


# ----------------------------------------------------------------------
# Auto-cache verification (optimize_caching off vs on)
# ----------------------------------------------------------------------


def verify_program_caching(program, config=None, name="<program>"):
    """Prove one program unchanged (and never slower) by auto-caching.

    Runs ``program`` once with ``optimize_caching=False`` and once with
    ``True`` and demands equivalent canonicalized results, valid traces
    on both runs, and a cached simulated wall-clock that never exceeds
    the uncached one.  Unlike the elision comparison, stage *shapes*
    are deliberately **not** compared: an auto-cached subtree
    legitimately replaces its recompute stages with a single ``cached``
    stage in later jobs -- the rewrite's entire point.

    Returns:
        A :class:`Verification`; ``elisions`` counts the ``auto-cache``
        optimizer decisions the cached run took.

    Raises:
        EquivalenceError: When results diverge or caching made the
            program slower in simulated seconds.
    """
    from ..observe.report import entry_from_context

    base_config = config if config is not None else laptop_config()
    runs = {}
    for caching in (False, True):
        ctx = EngineContext(
            replace(base_config, optimize_caching=caching)
        )
        try:
            result = program(ctx)
            validate_trace(ctx.trace)
            runs[caching] = (
                result,
                entry_from_context(ctx, "caching", name)[
                    "simulated_seconds"
                ],
                sum(_job_shuffle(job) for job in ctx.trace.jobs),
                len(
                    [
                        d for d in ctx.optimizer_decisions
                        if d.kind == "auto-cache"
                    ]
                ),
            )
        finally:
            ctx.close()
    base_result, base_seconds, base_shuffle, _ = runs[False]
    opt_result, opt_seconds, opt_shuffle, auto_caches = runs[True]
    if not results_equivalent(base_result, opt_result):
        raise EquivalenceError(
            "%s: auto-cached result differs from uncached result:\n"
            "%r\nvs\n%r" % (name, opt_result, base_result)
        )
    if opt_seconds > base_seconds + 1e-9:
        raise EquivalenceError(
            "%s: auto-caching made the program slower: %.6f simulated "
            "seconds vs %.6f without" % (name, opt_seconds, base_seconds)
        )
    return Verification(
        name=name,
        shuffle_records=base_shuffle,
        shuffle_records_optimized=opt_shuffle,
        shuffle_records_saved=0,
        elisions=auto_caches,
    )


def verify_library_caching(config=None, only=None):
    """Caching-verify every registry program; returns Verifications."""
    verifications = []
    for name, program in library_programs():
        if only and not any(fragment in name for fragment in only):
            continue
        verifications.append(
            verify_program_caching(program, config=config, name=name)
        )
    return verifications


# ----------------------------------------------------------------------
# Compiled-pipeline verification (compile_pipelines off vs on)
# ----------------------------------------------------------------------


def verify_program_compiled(program, config=None, name="<program>"):
    """Prove one program unchanged by compiled fused pipelines.

    Runs ``program`` once with ``compile_pipelines=False`` (interpreted
    :class:`FusedPipelineTask`) and once with ``True`` (generated
    specialized loops where provable, interpreter fallback elsewhere)
    and demands: equivalent canonicalized results, valid traces on both
    runs, and an **identical trace signature** -- which pins stage
    kinds, per-task record counts, and shuffle volumes exactly, so the
    two runs' simulated seconds are equal by construction (the
    signature includes every ``task_records`` tuple the cost model
    reads).  Simulated seconds are additionally compared directly as a
    belt-and-braces check.  Measured wall-clock of both runs is
    recorded on the returned :class:`Verification` for reporting; it is
    *not* asserted on (machine noise is not a correctness property).

    Returns:
        A :class:`Verification`; ``elisions`` counts the fused chains
        the compiled run actually compiled, and the two ``seconds_*``
        fields carry the measured wall-clock.

    Raises:
        EquivalenceError: When results, signatures, or simulated
            seconds diverge.
    """
    from ..engine.validate import trace_signature
    from ..observe.report import entry_from_context

    base_config = config if config is not None else laptop_config()
    runs = {}
    for compiled in (False, True):
        ctx = EngineContext(
            replace(base_config, compile_pipelines=compiled)
        )
        try:
            started = time.perf_counter()
            result = program(ctx)
            elapsed = time.perf_counter() - started
            validate_trace(ctx.trace)
            runs[compiled] = (
                result,
                trace_signature(ctx.trace),
                entry_from_context(ctx, "compiled", name)[
                    "simulated_seconds"
                ],
                elapsed,
                sum(_job_shuffle(job) for job in ctx.trace.jobs),
                len(
                    [
                        d for d in ctx.optimizer_decisions
                        if d.kind == "compiled-pipeline"
                        and d.choice == "compile"
                    ]
                ),
            )
        finally:
            ctx.close()
    base = runs[False]
    comp = runs[True]
    if comp[1] != base[1]:
        raise EquivalenceError(
            "%s: compiled run produced a different trace signature:\n"
            "%r\nvs\n%r" % (name, comp[1], base[1])
        )
    if not results_equivalent(base[0], comp[0]):
        raise EquivalenceError(
            "%s: compiled result differs from interpreted result:\n"
            "%r\nvs\n%r" % (name, comp[0], base[0])
        )
    if comp[2] != base[2]:
        raise EquivalenceError(
            "%s: compiled run simulates %.9f seconds, interpreted "
            "%.9f -- compiled loops must credit identical work"
            % (name, comp[2], base[2])
        )
    return Verification(
        name=name,
        shuffle_records=base[4],
        shuffle_records_optimized=comp[4],
        shuffle_records_saved=0,
        elisions=comp[5],
        seconds_interpreted=base[3],
        seconds_compiled=comp[3],
    )


def verify_library_compiled(config=None, only=None):
    """Compile-verify every registry program; returns Verifications."""
    verifications = []
    for name, program in library_programs():
        if only and not any(fragment in name for fragment in only):
            continue
        verifications.append(
            verify_program_compiled(program, config=config, name=name)
        )
    return verifications


# ----------------------------------------------------------------------
# Schema-inference verification (schema_inference off vs on)
# ----------------------------------------------------------------------


def verify_program_schema(program, config=None, name="<program>"):
    """Prove one program unchanged by whole-plan schema inference.

    Runs ``program`` twice with ``compile_pipelines=True`` -- once with
    ``schema_inference=False`` (probe-based columnar encoding, generic
    compiled loops) and once with ``True`` (columnar-direct loops on
    proven input schemas, probe-free ``encode_committed`` on proven
    output schemas, interpreter fallback on refuted/unknown chains) --
    and demands: equivalent canonicalized results, valid traces, an
    **identical trace signature** (the direct loops must credit exactly
    the generic loops' per-operator record counts, so simulated seconds
    are equal by construction), and directly-equal simulated seconds as
    a belt-and-braces check.  Measured wall-clock of both runs is
    recorded for reporting, not asserted on.

    Returns:
        A :class:`Verification`; ``elisions`` counts the
        ``columnar-commit`` decisions with ``choice="commit"`` the
        inferring run made (proven chains that skipped the encode
        probe), and the ``seconds_*`` fields carry measured wall-clock
        (``seconds_interpreted`` is the probing run,
        ``seconds_compiled`` the inferring run).

    Raises:
        EquivalenceError: When results, signatures, or simulated
            seconds diverge.
    """
    from ..engine.validate import trace_signature
    from ..observe.report import entry_from_context

    base_config = config if config is not None else laptop_config()
    runs = {}
    for inferring in (False, True):
        ctx = EngineContext(
            replace(
                base_config,
                compile_pipelines=True,
                schema_inference=inferring,
            )
        )
        try:
            started = time.perf_counter()
            result = program(ctx)
            elapsed = time.perf_counter() - started
            validate_trace(ctx.trace)
            runs[inferring] = (
                result,
                trace_signature(ctx.trace),
                entry_from_context(ctx, "schema", name)[
                    "simulated_seconds"
                ],
                elapsed,
                sum(_job_shuffle(job) for job in ctx.trace.jobs),
                len(
                    [
                        d for d in ctx.optimizer_decisions
                        if d.kind == "columnar-commit"
                        and d.choice == "commit"
                    ]
                ),
            )
        finally:
            ctx.close()
    base = runs[False]
    inferred = runs[True]
    if inferred[1] != base[1]:
        raise EquivalenceError(
            "%s: schema-inferring run produced a different trace "
            "signature:\n%r\nvs\n%r" % (name, inferred[1], base[1])
        )
    if not results_equivalent(base[0], inferred[0]):
        raise EquivalenceError(
            "%s: schema-inferring result differs from probing "
            "result:\n%r\nvs\n%r" % (name, inferred[0], base[0])
        )
    if inferred[2] != base[2]:
        raise EquivalenceError(
            "%s: schema-inferring run simulates %.9f seconds, probing "
            "run %.9f -- inference must not change credited work"
            % (name, inferred[2], base[2])
        )
    return Verification(
        name=name,
        shuffle_records=base[4],
        shuffle_records_optimized=inferred[4],
        shuffle_records_saved=0,
        elisions=inferred[5],
        seconds_interpreted=base[3],
        seconds_compiled=inferred[3],
    )


def verify_library_schema(config=None, only=None):
    """Schema-verify every registry program; returns Verifications."""
    verifications = []
    for name, program in library_programs():
        if only and not any(fragment in name for fragment in only):
            continue
        verifications.append(
            verify_program_schema(program, config=config, name=name)
        )
    return verifications


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.equivalence",
        description="Differential verifier: every repro.tasks program "
        "must produce identical results with and without shuffle "
        "elision.",
    )
    parser.add_argument(
        "--backend", choices=("serial", "process"), default="serial",
        help="task runtime backend for both runs (default: serial)",
    )
    parser.add_argument(
        "--compare",
        choices=("elision", "schedulers", "caching", "compiled", "schema"),
        default="elision",
        help="what to differentially verify: shuffle 'elision' "
        "(optimize off vs on; default), stage 'schedulers' "
        "(serial vs dag), effect-gated auto-'caching' "
        "(optimize_caching off vs on), 'compiled' fused pipelines "
        "(compile_pipelines off vs on), or whole-plan 'schema' "
        "inference (schema_inference off vs on, both compiled)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes for the process backend (default: 2)",
    )
    parser.add_argument(
        "--only", action="append", default=None, metavar="SUBSTRING",
        help="verify only programs whose name contains SUBSTRING "
        "(repeatable)",
    )
    args = parser.parse_args(argv)
    config = replace(
        laptop_config(), backend=args.backend, num_workers=args.workers
    )
    verify = {
        "elision": verify_program,
        "schedulers": verify_program_schedules,
        "caching": verify_program_caching,
        "compiled": verify_program_compiled,
        "schema": verify_program_schema,
    }[args.compare]
    failures = 0
    verified = []
    for name, program in library_programs():
        if args.only and not any(f in name for f in args.only):
            continue
        try:
            verification = verify(program, config=config, name=name)
        except EquivalenceError as error:
            failures += 1
            print("FAIL %s" % error)
            continue
        verified.append(verification)
        if args.compare == "elision":
            print(
                "ok   %-24s shuffle %6d -> %6d  (saved %d, %d elisions)"
                % (
                    verification.name,
                    verification.shuffle_records,
                    verification.shuffle_records_optimized,
                    verification.shuffle_records_saved,
                    verification.elisions,
                )
            )
        elif args.compare == "caching":
            print(
                "ok   %-24s cached run never slower  (%d auto-cache(s))"
                % (verification.name, verification.elisions)
            )
        elif args.compare == "compiled":
            print(
                "ok   %-24s interpreted == compiled  "
                "(%d chain(s) compiled, wall %.3fs -> %.3fs)"
                % (
                    verification.name,
                    verification.elisions,
                    verification.seconds_interpreted,
                    verification.seconds_compiled,
                )
            )
        elif args.compare == "schema":
            print(
                "ok   %-24s probing == inferring  "
                "(%d commit(s), wall %.3fs -> %.3fs)"
                % (
                    verification.name,
                    verification.elisions,
                    verification.seconds_interpreted,
                    verification.seconds_compiled,
                )
            )
        else:
            print(
                "ok   %-24s serial == dag  (shuffle %d, %d elisions)"
                % (
                    verification.name,
                    verification.shuffle_records,
                    verification.elisions,
                )
            )
    if args.compare == "elision":
        total_saved = sum(v.shuffle_records_saved for v in verified)
        print(
            "repro.analysis.equivalence: %d program(s) verified on the "
            "%s backend, %d failure(s), %d shuffle records elided"
            % (len(verified), args.backend, failures, total_saved)
        )
    elif args.compare == "caching":
        total_caches = sum(v.elisions for v in verified)
        print(
            "repro.analysis.equivalence: %d program(s) caching-"
            "verified on the %s backend, %d failure(s), %d auto-cache "
            "decision(s)"
            % (len(verified), args.backend, failures, total_caches)
        )
    elif args.compare == "compiled":
        total_chains = sum(v.elisions for v in verified)
        wall_base = sum(v.seconds_interpreted for v in verified)
        wall_comp = sum(v.seconds_compiled for v in verified)
        print(
            "repro.analysis.equivalence: %d program(s) compile-"
            "verified on the %s backend, %d failure(s), %d chain(s) "
            "compiled, wall %.3fs interpreted vs %.3fs compiled"
            % (
                len(verified), args.backend, failures, total_chains,
                wall_base, wall_comp,
            )
        )
    elif args.compare == "schema":
        total_commits = sum(v.elisions for v in verified)
        wall_base = sum(v.seconds_interpreted for v in verified)
        wall_inf = sum(v.seconds_compiled for v in verified)
        print(
            "repro.analysis.equivalence: %d program(s) schema-"
            "verified on the %s backend, %d failure(s), %d columnar "
            "commit(s), wall %.3fs probing vs %.3fs inferring"
            % (
                len(verified), args.backend, failures, total_commits,
                wall_base, wall_inf,
            )
        )
    else:
        print(
            "repro.analysis.equivalence: %d program(s) schedule-"
            "verified (serial vs dag) on the %s backend, %d failure(s)"
            % (len(verified), args.backend, failures)
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""The ``--format github`` renderer: workflow-command escaping and
stable ordering.

GitHub Actions parses ``::level param=value::message`` lines; a ``%``,
newline, or (in property values) ``:``/``,`` that leaks through
unescaped truncates or corrupts the annotation.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    _github_escape,
    make_diagnostic,
    render_github,
)


def test_escape_percent_and_newlines():
    assert _github_escape("50% done\nnext") == "50%25 done%0Anext"
    assert _github_escape("a\r\nb") == "a%0D%0Ab"


def test_escape_property_values_also_escape_colon_and_comma():
    assert _github_escape("a:b,c", property_value=True) == "a%3Ab%2Cc"
    # message position keeps : and , literal
    assert _github_escape("a:b,c") == "a:b,c"


def test_percent_escaped_first():
    # '%0A' in the input must round-trip as %250A, not re-read as a
    # newline escape
    assert _github_escape("x%0Ay") == "x%250Ay"


def test_multiline_message_renders_on_one_line():
    diag = make_diagnostic(
        "NPL101",
        "first line\nsecond line",
        file="a.py",
        line=3,
        col=1,
    )
    (line,) = render_github([diag]).splitlines()
    assert line == (
        "::error file=a.py,line=3,col=1,title=NPL101::NPL101 "
        "first line%0Asecond line"
    )


def test_colon_in_file_name_is_escaped():
    diag = make_diagnostic(
        "NPL104", "msg", file="C:\\src\\a.py", line=1, col=1
    )
    out = render_github([diag])
    assert "file=C%3A\\src\\a.py" in out


def test_severity_levels_map_to_github_levels():
    diags = [
        make_diagnostic("NPL201", "e", file="a.py", line=1, col=1),
        make_diagnostic("NPL501", "w", file="a.py", line=2, col=1),
        make_diagnostic("NPL504", "i", node="#2 Map"),
    ]
    lines = render_github(diags).splitlines()
    # plan-located findings have no file and sort first
    assert lines[0].startswith("::notice ")
    assert lines[1].startswith("::error ")
    assert lines[2].startswith("::warning ")


def test_plan_located_findings_annotate_without_file():
    diag = make_diagnostic("NPL301", "reused twice", node="#4 Map")
    (line,) = render_github([diag]).splitlines()
    assert "file=" not in line
    assert "plan #4 Map: reused twice" in line


def test_ordering_is_stable_across_files():
    diags = [
        make_diagnostic("NPL104", "d", file="b.py", line=1, col=1),
        make_diagnostic("NPL102", "c", file="a.py", line=9, col=1),
        make_diagnostic("NPL104", "b", file="a.py", line=2, col=5),
        make_diagnostic("NPL101", "a", file="a.py", line=2, col=5),
    ]
    rendered = [
        line.split("::")[2].split(" ")[0]
        for line in render_github(diags).splitlines()
    ]
    files = [
        line.split("file=")[1].split(",")[0]
        for line in render_github(diags).splitlines()
    ]
    # (file, line, col, code): a.py before b.py, then by position,
    # ties broken by code -- identical for any input permutation
    assert files == ["a.py", "a.py", "a.py", "b.py"]
    assert rendered == ["NPL101", "NPL104", "NPL102", "NPL104"]
    for permutation in (reversed(diags), sorted(
        diags, key=lambda d: d.message
    )):
        assert render_github(list(permutation)) == render_github(diags)

"""Stable hashing and hash partitioning."""

import subprocess
import sys

import pytest

from repro.engine.partitioner import (
    HashPartitioner,
    build_balanced_assignment,
    stable_hash,
)


class TestStableHash:
    def test_deterministic_within_process(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_stable_across_processes(self):
        code = (
            "from repro.engine.partitioner import stable_hash; "
            "print(stable_hash(('day1', 42)))"
        )
        runs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        assert len(runs) == 1
        assert runs == {str(stable_hash(("day1", 42)))}

    def test_distinct_types_do_not_collide_trivially(self):
        assert stable_hash("1") != stable_hash(1)
        assert stable_hash(1.0) != stable_hash(1)

    def test_handles_nested_tuples(self):
        assert stable_hash((("a", 1), ("b", (2, 3)))) == stable_hash(
            (("a", 1), ("b", (2, 3)))
        )

    def test_handles_none_bool_bytes(self):
        for key in (None, True, False, b"xyz"):
            assert stable_hash(key) == stable_hash(key)


class TestHashPartitioner:
    def test_partition_in_range(self):
        partitioner = HashPartitioner(7)
        for key in ("a", 1, (2, "b"), None):
            assert 0 <= partitioner.partition_for(key) < 7

    def test_split_preserves_all_records(self):
        partitioner = HashPartitioner(4)
        records = [(i % 10, i) for i in range(100)]
        buckets = partitioner.split(records)
        assert sum(len(b) for b in buckets) == 100

    def test_same_key_same_bucket(self):
        partitioner = HashPartitioner(4)
        buckets = partitioner.split([("k", 1), ("k", 2), ("k", 3)])
        non_empty = [b for b in buckets if b]
        assert len(non_empty) == 1

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)

    def test_equality(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)


class TestBalancedAssignment:
    def test_empty_counts(self):
        assert build_balanced_assignment({}, 4) == {}

    def test_single_partition_takes_everything(self):
        assignment = build_balanced_assignment({"a": 5, "b": 1}, 1)
        assert assignment == {"a": 0, "b": 0}

    def test_more_partitions_than_keys(self):
        assignment = build_balanced_assignment({"a": 3, "b": 2}, 8)
        assert set(assignment) == {"a", "b"}
        assert len(set(assignment.values())) == 2
        assert all(0 <= index < 8 for index in assignment.values())

    def test_rejects_non_positive_partition_count(self):
        with pytest.raises(ValueError):
            build_balanced_assignment({"a": 1}, 0)

    def test_uniform_counts_balance_exactly(self):
        counts = {i: 1 for i in range(100)}
        assignment = build_balanced_assignment(counts, 4)
        loads = [0] * 4
        for key, index in assignment.items():
            loads[index] += counts[key]
        assert loads == [25, 25, 25, 25]

    def test_deterministic(self):
        counts = {"k%d" % i: (i * 7) % 13 + 1 for i in range(50)}
        assert build_balanced_assignment(
            counts, 6
        ) == build_balanced_assignment(counts, 6)

    def test_matches_linear_scan_reference(self):
        # The heap-based LPT must reproduce the original linear scan
        # exactly, tie-breaks included.
        counts = {"k%d" % i: (i * 31) % 17 + 1 for i in range(200)}
        num_partitions = 7
        assignment = {}
        loads = [0] * num_partitions
        ordered = sorted(
            counts.items(),
            key=lambda item: (-item[1], stable_hash(item[0])),
        )
        for key, count in ordered:
            index = loads.index(min(loads))
            assignment[key] = index
            loads[index] += count
        assert build_balanced_assignment(
            counts, num_partitions
        ) == assignment

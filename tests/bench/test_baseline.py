"""The engine baseline matrix: the service-mode and pipeline cells.

The ``serve-pagerank-*`` pair runs repeated PageRank jobs through one
long-lived :class:`repro.serve.JobService`; the only difference between
the rows is the artifact budget, so warm must beat cold by exactly the
cost the cache removes -- and the committed ``BENCH_engine.json``
snapshot must show the same advantage, since ``--check-regressions``
gates it.

The ``pipeline-*`` trio differs only in ``compile_pipelines`` and
``schema_inference``: the compiled rows must simulate *exactly* the
interpreted row's seconds (the generated loops credit identical
per-operator counts) while their measured wall-clock -- recorded in
the committed snapshot -- must be at least 2x lower on the serial
rows, and the columnar-direct row (schema inference skips the encode
probe and reads column buffers directly) must be strictly faster than
the probing compiled row in the committed snapshot.
"""

import json
from pathlib import Path

from repro.bench.baseline import (
    _GROUP_COUNTS,
    _SCHEDULERS,
    _pipeline_cell,
    _serve_pagerank_cell,
    BASELINE_FILENAME,
    CELLS,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

#: Wall-clock advantage the committed compiled rows must show over the
#: interpreted rows on the serial backend (the live-run assertion uses
#: a softer floor -- CI machines are noisy, the snapshot was not).
_COMMITTED_SPEEDUP_FLOOR = 2.0
_LIVE_SPEEDUP_FLOOR = 1.3

#: Live-run tolerance for columnar-direct vs compiled wall-clock.  The
#: direct row's win over the probing compiled row is real but thin
#: (~1.05-1.15x committed), so the live assertion only demands the
#: direct row is not meaningfully *slower* -- the strict ordering is
#: gated on the committed snapshot, which was measured quiet.
_LIVE_DIRECT_SLACK = 1.25


class TestServeCells:
    def test_matrix_includes_service_mode(self):
        assert "serve-pagerank-cold" in CELLS
        assert "serve-pagerank-warm" in CELLS

    def test_warm_cache_beats_cold(self):
        cold = _serve_pagerank_cell("serve-pagerank-cold", 4)
        warm = _serve_pagerank_cell("serve-pagerank-warm", 4)
        assert cold.status == "ok"
        assert warm.status == "ok"
        assert warm.seconds < cold.seconds
        # The warm repeats read the cached graph artifacts instead of
        # re-parsing and re-shuffling the edge list every time.
        assert (
            warm.entry["totals"]["shuffle_records"]
            < cold.entry["totals"]["shuffle_records"]
        )
        assert (
            warm.entry["totals"]["records"]
            < cold.entry["totals"]["records"]
        )

    def test_warm_cell_is_deterministic(self):
        a = _serve_pagerank_cell("serve-pagerank-warm", 4)
        b = _serve_pagerank_cell("serve-pagerank-warm", 4)
        assert a.seconds == b.seconds

    def test_committed_snapshot_has_warm_advantage(self):
        data = json.loads((REPO_ROOT / BASELINE_FILENAME).read_text())
        rows = {
            (entry["system"], entry["x"]): entry["simulated_seconds"]
            for entry in data["entries"]
        }
        for groups in _GROUP_COUNTS:
            for scheduler in _SCHEDULERS:
                suffix = "" if scheduler == "serial" else "+dag"
                cold = rows["serve-pagerank-cold" + suffix, groups]
                warm = rows["serve-pagerank-warm" + suffix, groups]
                assert warm < cold


class TestPipelineCells:
    def test_matrix_includes_pipeline_pair(self):
        assert "pipeline-interpreted" in CELLS
        assert "pipeline-compiled" in CELLS
        assert "pipeline-columnar-direct" in CELLS

    def test_compiled_simulates_identical_seconds(self):
        interpreted = _pipeline_cell("pipeline-interpreted", 4)
        compiled = _pipeline_cell("pipeline-compiled", 4)
        assert interpreted.status == "ok"
        assert compiled.status == "ok"
        # Not approximately: the generated loop credits exactly the
        # interpreter's per-operator record counts, so the cost model
        # sees the same trace.
        assert compiled.seconds == interpreted.seconds
        assert (
            compiled.entry["totals"]["records"]
            == interpreted.entry["totals"]["records"]
        )

    def test_compiled_is_faster_in_wall_clock(self):
        # Warm both paths once so neither row pays one-time costs
        # (effect analysis cache, codegen compile) inside the timing.
        _pipeline_cell("pipeline-interpreted", 4)
        _pipeline_cell("pipeline-compiled", 4)
        interpreted = _pipeline_cell("pipeline-interpreted", 16)
        compiled = _pipeline_cell("pipeline-compiled", 16)
        speedup = interpreted.measured_seconds / compiled.measured_seconds
        assert speedup >= _LIVE_SPEEDUP_FLOOR, (
            "compiled pipeline only %.2fx faster" % speedup
        )

    def test_columnar_direct_simulates_identical_seconds(self):
        compiled = _pipeline_cell("pipeline-compiled", 4)
        direct = _pipeline_cell("pipeline-columnar-direct", 4)
        assert compiled.status == "ok"
        assert direct.status == "ok"
        # Reading column buffers directly must credit exactly the same
        # per-operator counts as decoding them through the probe path.
        assert direct.seconds == compiled.seconds
        assert (
            direct.entry["totals"]["records"]
            == compiled.entry["totals"]["records"]
        )

    def test_columnar_direct_wall_clock_competitive(self):
        # Warm both rows (codegen + schema-inference caches), then
        # demand the direct row beats interpreted like any compiled
        # row and does not lose meaningfully to the probing row.
        _pipeline_cell("pipeline-compiled", 4)
        _pipeline_cell("pipeline-columnar-direct", 4)
        interpreted = _pipeline_cell("pipeline-interpreted", 16)
        compiled = _pipeline_cell("pipeline-compiled", 16)
        direct = _pipeline_cell("pipeline-columnar-direct", 16)
        speedup = interpreted.measured_seconds / direct.measured_seconds
        assert speedup >= _LIVE_SPEEDUP_FLOOR, (
            "columnar-direct pipeline only %.2fx faster than "
            "interpreted" % speedup
        )
        assert (
            direct.measured_seconds
            <= compiled.measured_seconds * _LIVE_DIRECT_SLACK
        ), (
            "columnar-direct row slower than the probing compiled row "
            "beyond noise: %.4fs vs %.4fs"
            % (direct.measured_seconds, compiled.measured_seconds)
        )

    def test_committed_snapshot_has_compiled_speedup(self):
        data = json.loads((REPO_ROOT / BASELINE_FILENAME).read_text())
        rows = {
            (entry["system"], entry["x"]): entry
            for entry in data["entries"]
        }
        for groups in _GROUP_COUNTS:
            interpreted = rows["pipeline-interpreted", groups]
            compiled = rows["pipeline-compiled", groups]
            assert (
                compiled["simulated_seconds"]
                == interpreted["simulated_seconds"]
            )
            ratio = (
                interpreted["measured_wall_seconds"]
                / compiled["measured_wall_seconds"]
            )
            assert ratio >= _COMMITTED_SPEEDUP_FLOOR, (
                "committed compiled row at %d groups only %.2fx faster"
                % (groups, ratio)
            )

    def test_committed_snapshot_has_columnar_direct_win(self):
        data = json.loads((REPO_ROOT / BASELINE_FILENAME).read_text())
        rows = {
            (entry["system"], entry["x"]): entry
            for entry in data["entries"]
        }
        for groups in _GROUP_COUNTS:
            for scheduler in _SCHEDULERS:
                suffix = "" if scheduler == "serial" else "+dag"
                interpreted = rows["pipeline-interpreted" + suffix, groups]
                compiled = rows["pipeline-compiled" + suffix, groups]
                direct = rows[
                    "pipeline-columnar-direct" + suffix, groups
                ]
                # Identical credited work across all three rows...
                assert (
                    direct["simulated_seconds"]
                    == interpreted["simulated_seconds"]
                )
                # ...and the probe-free row is strictly the fastest.
                assert (
                    direct["measured_wall_seconds"]
                    < compiled["measured_wall_seconds"]
                ), (
                    "committed columnar-direct row at %d groups (%s) "
                    "not faster than compiled: %.4fs vs %.4fs"
                    % (
                        groups, scheduler,
                        direct["measured_wall_seconds"],
                        compiled["measured_wall_seconds"],
                    )
                )

"""The benchmark harness: measured runs, OOM handling, tables."""

import pytest

from repro.bench.harness import (
    OOM,
    RunResult,
    Sweep,
    geometric_x_values,
    run_measured,
)
from repro.engine import ClusterConfig, laptop_config
from repro.errors import SimulatedOutOfMemory


class TestRunMeasured:
    def test_successful_run_records_seconds(self, config):
        result = run_measured(
            config, "sys", 1, lambda ctx: ctx.bag_of([1]).count()
        )
        assert result.status == "ok"
        assert result.seconds > 0
        assert result.jobs == 1

    def test_oom_is_caught(self):
        config = ClusterConfig(
            machines=1,
            cores_per_machine=1,
            memory_per_machine_bytes=1_000,
            bytes_per_record=100.0,
            memory_safety_fraction=1.0,
            memory_overhead_factor=1.0,
        )

        def blow_up(ctx):
            ctx.bag_of(
                [("k", i) for i in range(100)]
            ).group_by_key().collect()

        result = run_measured(config, "sys", 1, blow_up)
        assert result.status == "oom"
        assert result.cell() == OOM

    def test_fresh_context_per_run(self, config):
        a = run_measured(
            config, "s", 1, lambda ctx: ctx.bag_of([1]).count()
        )
        b = run_measured(
            config, "s", 1, lambda ctx: ctx.bag_of([1]).count()
        )
        assert a.seconds == pytest.approx(b.seconds)


class TestSweep:
    def make_sweep(self):
        sweep = Sweep(title="T", x_label="x", systems=["a", "b"])
        sweep.add(RunResult(system="a", x=1, seconds=2.0))
        sweep.add(RunResult(system="b", x=1, seconds=8.0))
        sweep.add(RunResult(system="a", x=2, status="oom"))
        return sweep

    def test_lookup(self):
        sweep = self.make_sweep()
        assert sweep.seconds("a", 1) == 2.0
        assert sweep.seconds("a", 2) is None
        assert sweep.seconds("missing", 1) is None

    def test_speedup(self):
        sweep = self.make_sweep()
        assert sweep.speedup("b", "a", 1) == pytest.approx(4.0)
        assert sweep.speedup("b", "a", 2) is None

    def test_x_values_in_insert_order(self):
        assert self.make_sweep().x_values() == [1, 2]

    def test_table_contains_everything(self):
        table = self.make_sweep().to_table()
        assert "T" in table
        assert "OOM" in table
        assert "2.0 s" in table
        assert "8.0 s" in table
        assert "-" in table  # missing b@2 cell

    def test_run_executes_and_collects(self):
        sweep = Sweep(title="T", x_label="x", systems=["a"])
        result = sweep.run(
            laptop_config(), "a", 1,
            lambda ctx: ctx.bag_of([1]).count(),
        )
        assert result in sweep.results


class TestGeometricValues:
    def test_powers_of_two(self):
        assert geometric_x_values(1, 16) == [1, 2, 4, 8, 16]

    def test_custom_factor(self):
        assert geometric_x_values(1, 100, factor=10) == [1, 10, 100]

"""Thread safety of the context's shared state under concurrent jobs.

The DAG scheduler and ``ctx.gather`` submit work from many threads into
one ``EngineContext``; the trace, stage metrics, optimizer-decision
list, and shuffle-assignment registry must absorb concurrent mutation
without losing or double-counting anything.
"""

import copy
import pickle
import threading

from repro.engine import EngineContext, laptop_config
from repro.engine.metrics import ExecutionTrace


def dag_ctx(**overrides):
    overrides.setdefault("scheduler", "dag")
    return EngineContext(laptop_config(**overrides))


class TestConcurrentJobs:
    def test_gather_records_every_job_exactly_once(self):
        ctx = dag_ctx()
        sizes = [10, 20, 30, 40, 50, 60, 70, 80]
        results = ctx.gather(
            *[
                (lambda n=n: ctx.bag_of(range(n)).count())
                for n in sizes
            ]
        )
        assert results == sizes
        assert ctx.trace.num_jobs == len(sizes)
        assert [job.job_id for job in ctx.trace.jobs] == list(
            range(len(sizes))
        )
        assert ctx.trace.total_records == sum(sizes)

    def test_concurrent_shuffles_record_all_decisions(self):
        # Each thunk's second reduce adopts the layout of its first --
        # one elision decision per thunk, appended concurrently.
        ctx = dag_ctx()

        def elision_job(offset):
            def run():
                first = (
                    ctx.bag_of(range(offset, offset + 20))
                    .map(lambda x: (x % 4, x))
                    .reduce_by_key(lambda a, b: a + b)
                )
                return sorted(
                    first.reduce_by_key(lambda a, b: a + b).collect()
                )

            return run

        results = ctx.gather(*[elision_job(100 * i) for i in range(4)])
        assert len(results) == 4
        elisions = [
            decision
            for decision in ctx.optimizer_decisions
            if decision.kind == "shuffle-elision"
        ]
        assert len(elisions) == 4

    def test_trace_totals_match_serial_submission(self):
        def program(ctx, concurrent):
            thunks = [
                (
                    lambda n=n: sorted(
                        ctx.bag_of(range(n))
                        .map(lambda x: (x % 3, 1))
                        .reduce_by_key(lambda a, b: a + b)
                        .collect()
                    )
                )
                for n in (12, 24, 36)
            ]
            if concurrent:
                return ctx.gather(*thunks)
            return [thunk() for thunk in thunks]

        serial_ctx = EngineContext(laptop_config())
        concurrent_ctx = dag_ctx()
        try:
            expected = program(serial_ctx, concurrent=False)
            actual = program(concurrent_ctx, concurrent=True)
        finally:
            serial_ctx.close()
            concurrent_ctx.close()
        assert actual == expected
        assert (
            concurrent_ctx.trace.total_records
            == serial_ctx.trace.total_records
        )
        assert (
            concurrent_ctx.trace.num_stages
            == serial_ctx.trace.num_stages
        )


class TestLockedStructures:
    def test_stage_metrics_mutators_do_not_drop_updates(self):
        trace = ExecutionTrace()
        stage = trace.new_job("collect").new_stage("input")
        workers = 8
        per_worker = 200

        def hammer(worker):
            for i in range(per_worker):
                stage.add_task_records(worker, 1)
                stage.add_task_seconds(worker, 0.001)
                stage.add_task_retries(1)
                stage.add_straggler_tasks(1)
                stage.add_failed_attempt_seconds(0.001)

        threads = [
            threading.Thread(target=hammer, args=(w,))
            for w in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = workers * per_worker
        assert stage.total_records == total
        assert stage.task_retries == total
        assert stage.straggler_tasks == total
        assert abs(stage.measured_seconds - total * 0.001) < 1e-6
        assert abs(stage.failed_attempt_seconds - total * 0.001) < 1e-6

    def test_new_job_ids_unique_under_contention(self):
        trace = ExecutionTrace()
        ids = []
        lock = threading.Lock()

        def submit():
            for _ in range(50):
                job = trace.new_job("count")
                with lock:
                    ids.append(job.job_id)

        threads = [threading.Thread(target=submit) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(ids) == list(range(300))

    def test_trace_copies_and_pickles_after_concurrent_runs(self):
        # The locks guarding trace state are dropped on pickling and
        # recreated on load, so snapshots keep working.
        ctx = dag_ctx()
        ctx.gather(
            lambda: ctx.bag_of(range(30))
            .map(lambda x: (x % 3, x))
            .reduce_by_key(lambda a, b: a + b)
            .count(),
            lambda: ctx.bag_of(range(10)).count(),
        )
        snapshot = copy.deepcopy(ctx.trace)
        assert snapshot.summary() == ctx.trace.summary()
        restored = pickle.loads(pickle.dumps(ctx.trace))
        assert restored.summary() == ctx.trace.summary()
        # Restored instances accept further (locked) mutation.
        restored.new_job("count")
        assert restored.num_jobs == ctx.trace.num_jobs + 1

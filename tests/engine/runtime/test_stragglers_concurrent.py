"""Straggler detection with concurrently dispatched stages.

The straggler baseline is the task set's *own* per-task attributed
seconds -- never a pool-wide aggregate -- so a slow co-scheduled
sibling stage can neither fabricate stragglers in a uniform stage nor
mask a genuine straggler in a mixed one.  These tests dispatch two
deliberately unbalanced stages at the same time over one scheduler and
check both directions.
"""

import time

from repro.engine import TaskScheduler, laptop_config
from repro.engine.metrics import ExecutionTrace


class SleepTask:
    operator = "Sleep[test]"

    def __call__(self, seconds):
        time.sleep(seconds)
        return seconds


def concurrent_scheduler():
    return TaskScheduler(
        laptop_config(
            backend="serial",
            max_concurrent_stages=2,
            straggler_min_task_seconds=0.005,
            straggler_factor=1.5,
        )
    )


def dispatch_both(scheduler, fast_args, slow_args):
    """Run two stages side by side; returns their StageMetrics."""
    trace = ExecutionTrace()
    job = trace.new_job("collect")
    fast_stage = job.new_stage("input")
    slow_stage = job.new_stage("input")
    futures = [
        scheduler.submit_stage(SleepTask(), fast_args, stage=fast_stage),
        scheduler.submit_stage(SleepTask(), slow_args, stage=slow_stage),
    ]
    for future in futures:
        future.result(timeout=30)
    return fast_stage, slow_stage


class TestConcurrentStragglerBaselines:
    def test_uniform_stages_unskewed_by_slow_sibling(self):
        # Pooled, the fast tasks would drag the median down and flag
        # every slow-stage task; per-set baselines flag none.
        scheduler = concurrent_scheduler()
        try:
            fast, slow = dispatch_both(
                scheduler,
                fast_args=[(0.0,)] * 5,
                slow_args=[(0.04,)] * 5,
            )
        finally:
            scheduler.close()
        assert fast.straggler_tasks == 0
        assert slow.straggler_tasks == 0

    def test_genuine_straggler_not_masked_by_slow_sibling(self):
        # Pooled, the sibling's uniformly slow tasks would raise the
        # median above the mixed stage's outlier; per-set baselines
        # still flag exactly the one outlier.
        scheduler = concurrent_scheduler()
        try:
            mixed, slow = dispatch_both(
                scheduler,
                fast_args=[(0.0,)] * 5 + [(0.04,)],
                slow_args=[(0.08,)] * 4,
            )
        finally:
            scheduler.close()
        assert mixed.straggler_tasks == 1
        assert slow.straggler_tasks == 0

    def test_retry_accounting_isolated_per_stage(self):
        # Measured seconds land on the stage that ran the task, even
        # when the two dispatches interleave on the pool.
        scheduler = concurrent_scheduler()
        try:
            fast, slow = dispatch_both(
                scheduler,
                fast_args=[(0.0,)] * 3,
                slow_args=[(0.02,)] * 3,
            )
        finally:
            scheduler.close()
        assert len(fast.task_seconds) == 3
        assert len(slow.task_seconds) == 3
        assert slow.measured_seconds >= 0.06
        assert fast.measured_seconds < slow.measured_seconds

"""The engine's static optimizer pass: shuffle-elision planning.

The executor consults this once per job.  The heavy lifting -- proving
which wide nodes re-shuffle data that is already laid out correctly --
lives in :mod:`repro.analysis.properties`; this module is the thin
engine-side entry point that honors ``ClusterConfig.optimize_shuffles``.

Soundness note: a static :class:`~repro.analysis.properties.Elision` is
a *permission*, not a command.  The executor still checks the runtime
preconditions (partition counts match, the origin shuffle's concrete
assignment is registered) and falls back to a normal shuffle when they
do not hold.
"""

__all__ = ["plan_shuffle_elisions"]


def plan_shuffle_elisions(root, config=None):
    """Shuffles the executor may elide for this plan.

    Args:
        root: The plan's root node.
        config: The cluster config; when it disables
            ``optimize_shuffles`` no elisions are planned.

    Returns:
        ``{id(node): Elision}`` for every wide node whose input is
        provably co-partitioned with the layout the node would build.
    """
    if config is not None and not getattr(config, "optimize_shuffles", True):
        return {}
    # Lazy import: repro.analysis imports repro.engine, so engine
    # modules must not import the analysis layer at module scope.
    from ..analysis.properties import infer_properties

    return infer_properties(root).elisions

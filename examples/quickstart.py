"""Quickstart: per-day bounce rate with nested parallelism.

The running example of the paper (Sec. 2.1, Listings 1-3): a whole-bag
``bounce_rate`` function applied to every group of a grouped visit log.
Matryoshka flattens the nested program into a single flat-parallel job
chain -- no per-group jobs, no materialized groups.

Run:  python examples/quickstart.py
"""

import repro
from repro.data import visits_log

def bounce_rate(group):
    """Listing 1's UDF: the fraction of single-visit IPs in one group.

    Written once against the bag interface; works on an InnerBag after
    flattening.
    """
    counts_per_ip = group.map(lambda ip: (ip, 1)).reduce_by_key(
        lambda a, b: a + b
    )
    num_bounces = counts_per_ip.filter(lambda kv: kv[1] == 1).count()
    num_total_visitors = group.distinct().count()
    return num_bounces / num_total_visitors

def main():
    # A simulated 25-machine cluster (the paper's evaluation hardware).
    # Programs execute for real; the trace yields simulated runtimes.
    ctx = repro.EngineContext(repro.paper_cluster_config())

    records = visits_log(num_days=7, total_visits=2000, seed=42)
    visits = ctx.bag_of(records)  # Bag[(day, ip)]

    # Listing 2: groupByKeyIntoNestedBag + mapWithLiftedUDF.  No shuffle
    # happens here -- the nested bag is represented flat.
    per_day = repro.group_by_key_into_nested_bag(visits)
    rates = per_day.map_inner(bounce_rate)

    print("Per-day bounce rates (computed by the flattened program):")
    for day, rate in sorted(rates.to_bag().collect()):
        print("  %-6s %.3f" % (day, rate))

    print()
    print("Execution trace:", ctx.trace.summary())
    print(
        "Simulated runtime on the 25-machine cluster: %.1f s"
        % ctx.simulated_seconds()
    )
    print(
        "Jobs launched: %d (constant in the number of days -- that is "
        "the point)" % ctx.trace.num_jobs
    )

if __name__ == "__main__":
    main()

"""Average Distances: the three-level task (paper Sec. 2.2)."""

import networkx as nx
import pytest

from repro.data import component_graph
from repro.tasks import avg_distances as ad


@pytest.fixture(scope="module")
def edges():
    return component_graph(
        num_components=3, vertices_per_component=6, seed=9
    )


def networkx_truth(edges):
    graph = nx.Graph(edges)
    truth = {}
    for component in nx.connected_components(graph):
        sub = graph.subgraph(component)
        n = len(component)
        total = sum(
            d
            for lengths in dict(
                nx.all_pairs_shortest_path_length(sub)
            ).values()
            for d in lengths.values()
        )
        truth[min(component)] = total / (n * (n - 1))
    return truth


class TestReference:
    def test_matches_networkx(self, edges):
        truth = networkx_truth(edges)
        got, _work = ad.avg_distances_reference(edges)
        assert set(got) == set(truth)
        assert all(
            got[c] == pytest.approx(truth[c]) for c in truth
        )

    def test_triangle_distance_is_one(self):
        got, _work = ad.avg_distances_reference([(0, 1), (1, 2), (0, 2)])
        assert got == {0: pytest.approx(1.0)}

    def test_path_of_three(self):
        got, _work = ad.avg_distances_reference([(0, 1), (1, 2)])
        # Distances: 0-1:1, 0-2:2, 1-2:1 (both directions) => avg 4/3.
        assert got[0] == pytest.approx(4 / 3)


class TestNestedThreeLevels:
    def test_matches_reference(self, ctx, edges):
        truth, _work = ad.avg_distances_reference(edges)
        got = dict(ad.avg_distances_nested(ctx, edges).collect())
        assert set(got) == set(truth)
        assert all(
            got[c] == pytest.approx(truth[c]) for c in truth
        )

    def test_single_component(self, ctx):
        got = dict(
            ad.avg_distances_nested(ctx, [(0, 1), (1, 2)]).collect()
        )
        assert got[0] == pytest.approx(4 / 3)


class TestWorkarounds:
    def test_outer_matches_reference(self, ctx, edges):
        truth, _work = ad.avg_distances_reference(edges)
        got = dict(ad.avg_distances_outer(ctx, edges).collect())
        assert all(
            got[c] == pytest.approx(truth[c]) for c in truth
        )

    def test_inner_matches_reference(self, ctx, edges):
        truth, _work = ad.avg_distances_reference(edges)
        got = dict(ad.avg_distances_inner(ctx, edges))
        assert all(
            got[c] == pytest.approx(truth[c]) for c in truth
        )

    def test_inner_jobs_explode_multiplicatively(self, ctx):
        """Inner-parallel parallelizes only level 3: the job count grows
        with components x sources x BFS waves."""
        small = component_graph(1, 4, seed=1)
        big = component_graph(4, 4, seed=1)
        ctx.reset_trace()
        ad.avg_distances_inner(ctx, small)
        small_jobs = ctx.trace.num_jobs
        ctx.reset_trace()
        ad.avg_distances_inner(ctx, big)
        assert ctx.trace.num_jobs >= 3 * small_jobs

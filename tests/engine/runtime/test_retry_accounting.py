"""Retried tasks must not double-count records or task seconds.

A retried attempt re-processes its partition from scratch; only the
successful attempt may contribute to the stage's record totals and
``task_seconds``.  Time burned in failed attempts is tracked separately
as ``failed_attempt_seconds``.
"""

import pytest

from repro.engine import EngineContext, laptop_config


def fresh_ctx(**overrides):
    overrides.setdefault("backend", "serial")
    return EngineContext(laptop_config(**overrides))


def narrow_job(ctx):
    return sorted(
        ctx.bag_of(range(40)).map(lambda x: x * 2).collect()
    )


def shuffle_job(ctx):
    return sorted(
        ctx.bag_of(range(40))
        .map(lambda x: (x % 4, x))
        .reduce_by_key(lambda a, b: a + b)
        .collect()
    )


def totals(ctx):
    return {
        "records": ctx.trace.total_records,
        "per_stage": [
            (stage.kind, stage.origin, stage.total_records)
            for job in ctx.trace.jobs
            for stage in job.stages
        ],
    }


class TestRecordAccounting:
    @pytest.mark.parametrize("job", [narrow_job, shuffle_job])
    def test_total_records_unchanged_by_retries(self, job):
        clean = fresh_ctx()
        assert job(clean) is not None
        baseline = totals(clean)

        faulty = fresh_ctx()
        faulty.fault_injector.kill_task(task_index=0, stage=0, times=2)
        assert job(faulty) == job(fresh_ctx())
        assert faulty.runtime.tasks_retried == 2
        assert totals(faulty) == baseline

    @pytest.mark.parametrize("job", [narrow_job, shuffle_job])
    def test_total_records_unchanged_on_process_backend(self, job):
        clean = fresh_ctx()
        job(clean)
        baseline = totals(clean)

        faulty = fresh_ctx(backend="process", num_workers=2)
        faulty.fault_injector.kill_task(task_index=1, stage=0)
        job(faulty)
        assert faulty.runtime.tasks_retried == 1
        assert totals(faulty) == baseline

    def test_reduce_side_retry_does_not_inflate_shuffle_counts(self):
        clean = fresh_ctx()
        shuffle_job(clean)
        baseline = [
            stage.shuffle_read_records
            for job in clean.trace.jobs
            for stage in job.stages
        ]

        faulty = fresh_ctx()
        faulty.fault_injector.kill_task(
            operator="ReduceByKey", task_index=0
        )
        shuffle_job(faulty)
        assert faulty.runtime.tasks_retried == 1
        assert [
            stage.shuffle_read_records
            for job in faulty.trace.jobs
            for stage in job.stages
        ] == baseline


class TestSecondsAccounting:
    def stage_with_retry(self, ctx):
        for job in ctx.trace.jobs:
            for stage in job.stages:
                if stage.task_retries:
                    return stage
        raise AssertionError("no stage recorded a retry")

    def test_failed_attempts_tracked_separately(self):
        ctx = fresh_ctx()
        ctx.fault_injector.kill_task(task_index=0, stage=0, times=2)
        narrow_job(ctx)
        stage = self.stage_with_retry(ctx)
        assert stage.task_retries == 2
        assert stage.failed_attempt_seconds > 0.0
        assert ctx.trace.failed_attempt_seconds == (
            stage.failed_attempt_seconds
        )

    def test_task_seconds_counts_each_task_once(self):
        """With per-task timing, a stage's task_seconds must come from
        exactly ``num_tasks`` successful attempts -- the killed
        attempt's time goes to failed_attempt_seconds instead."""
        ctx = fresh_ctx()
        ctx.fault_injector.kill_task(task_index=0, stage=0)
        narrow_job(ctx)
        stage = self.stage_with_retry(ctx)
        assert len(stage.task_seconds) == stage.num_tasks
        assert all(seconds > 0.0 for seconds in stage.task_seconds)

    def test_clean_run_has_no_failed_attempt_seconds(self):
        ctx = fresh_ctx()
        shuffle_job(ctx)
        assert ctx.trace.failed_attempt_seconds == 0.0

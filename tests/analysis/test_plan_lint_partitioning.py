"""NPL203 + NPL4xx: partitioning-property diagnostics."""

from repro.analysis import analyze_bag


def codes(diags):
    return [d.code for d in diags]


def _add(a, b):
    return a + b


def _swap(kv):
    return (kv[1], kv[0])


def _opaque(kv):
    return _swap(kv)


def _keyed(ctx, n=60, k=5):
    return ctx.bag_of(list(range(n))).map(lambda x: (x % k, x))


def _by_code(diags, code):
    return [d for d in diags if d.code == code]


# ---------------------------------------------------------------------------
# NPL401: redundant shuffle (elided by the engine)
# ---------------------------------------------------------------------------


def test_npl401_same_layout_shuffle(ctx):
    bag = _keyed(ctx).reduce_by_key(_add, 4).group_by_key(4)
    matching = _by_code(analyze_bag(bag), "NPL401")
    assert len(matching) == 1
    assert "GroupByKey" in matching[0].node
    assert "elides" in matching[0].message


def test_npl401_cogroup_adoption_reported(ctx):
    rbk = _keyed(ctx).reduce_by_key(_add, 4)
    joined = rbk.join(_keyed(ctx, n=40), num_partitions=4)
    matching = _by_code(analyze_bag(joined), "NPL401")
    assert len(matching) == 1
    assert "left input" in matching[0].message


def test_npl401_silent_on_fresh_shuffle(ctx):
    bag = _keyed(ctx).reduce_by_key(_add, 4)
    assert "NPL401" not in codes(analyze_bag(bag))


# ---------------------------------------------------------------------------
# NPL402: key-rewriting map destroys co-partitioning
# ---------------------------------------------------------------------------


def test_npl402_key_rewriting_map(ctx):
    bag = _keyed(ctx).reduce_by_key(_add, 4).map(_swap).group_by_key(4)
    matching = _by_code(analyze_bag(bag), "NPL402")
    assert len(matching) == 1
    assert "Map" in matching[0].node  # blames the map, not the shuffle


def test_npl402_silent_for_key_preserving_map(ctx):
    bag = (
        _keyed(ctx)
        .reduce_by_key(_add, 4)
        .map(lambda kv: (kv[0], -kv[1]))
        .group_by_key(4)
    )
    found = codes(analyze_bag(bag))
    assert "NPL402" not in found
    assert "NPL401" in found  # the proof carried through instead


# ---------------------------------------------------------------------------
# NPL403: partition-count mismatch
# ---------------------------------------------------------------------------


def test_npl403_partition_count_mismatch(ctx):
    bag = _keyed(ctx).reduce_by_key(_add, 4).group_by_key(8)
    matching = _by_code(analyze_bag(bag), "NPL403")
    assert len(matching) == 1
    assert "4" in matching[0].message and "8" in matching[0].message
    assert "NPL401" not in codes(analyze_bag(bag))


def test_npl403_silent_when_counts_align(ctx):
    bag = _keyed(ctx).reduce_by_key(_add, 4).group_by_key(4)
    assert "NPL403" not in codes(analyze_bag(bag))


# ---------------------------------------------------------------------------
# NPL404: an honest hint would enable elision
# ---------------------------------------------------------------------------


def test_npl404_unprovable_map_suggests_hint(ctx):
    bag = _keyed(ctx).reduce_by_key(_add, 4).map(_opaque).group_by_key(4)
    matching = _by_code(analyze_bag(bag), "NPL404")
    assert len(matching) == 1
    assert matching[0].severity == "info"
    assert "preserves_partitioning" in matching[0].message
    assert "NPL402" not in codes(analyze_bag(bag))


def test_npl404_silenced_by_hint(ctx):
    bag = (
        _keyed(ctx)
        .reduce_by_key(_add, 4)
        .map(_opaque, preserves_partitioning=True)
        .group_by_key(4)
    )
    found = codes(analyze_bag(bag))
    assert "NPL404" not in found
    assert "NPL401" in found


def test_npl404_silent_when_map_is_provably_rewriting(ctx):
    bag = _keyed(ctx).reduce_by_key(_add, 4).map(_swap).group_by_key(4)
    assert "NPL404" not in codes(analyze_bag(bag))


# ---------------------------------------------------------------------------
# NPL203: repr()-hashed shuffle keys
# ---------------------------------------------------------------------------


class _OpaqueKey:
    def __init__(self, value):
        self.value = value

    def __hash__(self):
        return hash(self.value)

    def __eq__(self, other):
        return (
            isinstance(other, _OpaqueKey) and other.value == self.value
        )


def test_npl203_object_keys_into_a_shuffle(ctx):
    records = [(_OpaqueKey(i % 3), i) for i in range(12)]
    bag = ctx.bag_of(records).reduce_by_key(_add)
    matching = _by_code(analyze_bag(bag), "NPL203")
    assert len(matching) == 1
    assert "Parallelize" in matching[0].node
    assert "repr()" in matching[0].message


def test_npl203_silent_for_primitive_and_tuple_keys(ctx):
    records = [((i % 3, "g"), i) for i in range(12)]
    bag = ctx.bag_of(records).reduce_by_key(_add)
    assert "NPL203" not in codes(analyze_bag(bag))


def test_npl203_silent_without_a_shuffle(ctx):
    records = [(_OpaqueKey(i), i) for i in range(12)]
    bag = ctx.bag_of(records).map(lambda kv: kv[1])
    assert "NPL203" not in codes(analyze_bag(bag))

"""Stable node ids, partition inference, and the compact explain mode."""

from repro.engine import plan as p


def _keyed(ctx):
    return ctx.bag_of(list(range(32))).map(lambda x: (x % 4, x))


def test_assign_node_ids_is_preorder_left_to_right(ctx):
    reduced = _keyed(ctx).reduce_by_key(lambda a, b: a + b, 4)
    root = reduced.node
    ids = p.assign_node_ids(root)
    ordered = list(p.iter_nodes_ordered(root))
    assert [ids[id(node)] for node in ordered] == [1, 2, 3]
    assert [node.name for node in ordered] == [
        "ReduceByKey", "Map", "Parallelize",
    ]


def test_shared_node_gets_one_id(ctx):
    reduced = _keyed(ctx).reduce_by_key(lambda a, b: a + b, 4)
    merged = reduced.keys().union(reduced.values())
    ids = p.assign_node_ids(merged.node)
    # Union, Map(keys), ReduceByKey, Map(keyed), Parallelize, Map(values)
    assert len(ids) == 6
    assert sorted(ids.values()) == [1, 2, 3, 4, 5, 6]


def test_ids_are_stable_across_calls(ctx):
    root = _keyed(ctx).reduce_by_key(lambda a, b: a + b, 4).node
    first = p.assign_node_ids(root)
    second = p.assign_node_ids(root)
    assert first == second


def test_partition_counts_mirror_bag_layer(ctx):
    left = _keyed(ctx).reduce_by_key(lambda a, b: a + b, 4)
    merged = left.keys().union(left.values())
    parts = p.partition_counts(merged.node)
    assert parts[id(merged.node)] == 8  # union adds its inputs
    assert parts[id(left.node)] == 4
    assert merged.num_partitions == 8


def test_partition_counts_broadcast_join_follows_stream_side(ctx):
    left = ctx.bag_of(list(range(10))).map(lambda x: (x, x))
    right = ctx.bag_of(list(range(5))).map(lambda x: (x, -x))
    joined = left.join(right, strategy="broadcast")
    parts = p.partition_counts(joined.node)
    assert parts[id(joined.node)] == left.num_partitions


def test_explain_shows_ids_and_partitions(ctx):
    reduced = _keyed(ctx).reduce_by_key(lambda a, b: a + b, 4)
    text = reduced.explain()
    lines = text.splitlines()
    assert lines[0].startswith("ReduceByKey#1")
    assert "parts=4" in lines[0]
    assert "Parallelize#3" in text


def test_plain_node_explain_is_unchanged(ctx):
    # The no-argument PlanNode.explain() keeps its historical format.
    reduced = _keyed(ctx).reduce_by_key(lambda a, b: a + b, 4)
    text = reduced.node.explain()
    assert "#" not in text
    assert "parts=" not in text


def test_explain_compact_one_line_per_node(ctx):
    reduced = _keyed(ctx).reduce_by_key(lambda a, b: a + b, 4)
    merged = reduced.keys().union(reduced.values())
    text = merged.explain(compact=True)
    lines = text.splitlines()
    assert len(lines) == 6
    assert lines[0].startswith("#1 Union")
    assert lines[0].endswith("<- #2 #6")
    # The shared ReduceByKey appears once, referenced by both parents.
    assert sum("ReduceByKey" in line for line in lines) == 1


def test_describe_node_includes_label(ctx):
    bag = ctx.bag_of([1, 2]).with_label("input")
    ids = p.assign_node_ids(bag.node)
    parts = p.partition_counts(bag.node)
    text = p.describe_node(bag.node, ids, parts)
    assert text.startswith("#1 Parallelize")
    assert "[input]" in text


def test_static_record_count_propagation(ctx):
    base = ctx.bag_of(list(range(7)))
    assert p.static_record_count(base.node) == 7
    mapped = base.map(lambda x: x + 1).zip_with_unique_id()
    assert p.static_record_count(mapped.node) == 7
    both = base.union(ctx.bag_of([1, 2, 3]))
    assert p.static_record_count(both.node) == 10
    filtered = base.filter(lambda x: x > 2)
    assert p.static_record_count(filtered.node) is None
    reduced = _keyed(ctx).reduce_by_key(lambda a, b: a + b)
    assert p.static_record_count(reduced.node) is None

"""The engine context: entry point for creating bags and running jobs.

An :class:`EngineContext` is the analog of a ``SparkContext``: it owns the
cluster configuration, the executor, the execution trace, and the cost
model that converts the trace into simulated seconds.
"""

from .bag import Bag
from .broadcast import Broadcast, check_broadcast_fits
from .config import ClusterConfig, laptop_config
from .costmodel import CostModel
from .executor import Executor
from .metrics import ExecutionTrace
from .plan import Parallelize
from .validate import validate_trace


class EngineContext:
    """Owns one simulated cluster and everything that runs on it.

    Args:
        config: The simulated cluster; defaults to a small laptop-friendly
            configuration suitable for tests.
    """

    def __init__(self, config=None):
        self.config = config if config is not None else laptop_config()
        if not isinstance(self.config, ClusterConfig):
            raise TypeError("config must be a ClusterConfig")
        self.trace = ExecutionTrace()
        self.executor = Executor(self.config, self.trace)
        self.cost_model = CostModel(self.config)

    # ------------------------------------------------------------------
    # Bag creation
    # ------------------------------------------------------------------

    def bag_of(self, data, num_partitions=None):
        """Create a bag from driver-side data."""
        data = list(data)
        if num_partitions is None:
            num_partitions = min(
                self.config.default_parallelism, max(1, len(data))
            )
        return Bag(self, Parallelize(data, num_partitions), num_partitions)

    def empty_bag(self):
        return self.bag_of([], num_partitions=1)

    def range_bag(self, n, num_partitions=None):
        """A bag of the integers ``0 .. n-1``."""
        return self.bag_of(range(n), num_partitions)

    # ------------------------------------------------------------------
    # Broadcast
    # ------------------------------------------------------------------

    def broadcast(self, value, num_records=None):
        """Ship a read-only value to every executor.

        Args:
            value: The payload.
            num_records: How many paper-scale records the payload
                represents (defaults to ``len(value)`` for sized
                collections, else 1).
        """
        if num_records is None:
            try:
                num_records = len(value)
            except TypeError:
                num_records = 1
        check_broadcast_fits(num_records, self.config)
        if self.trace.jobs:
            self.trace.jobs[-1].broadcast_records += num_records
        return Broadcast(value, num_records)

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def simulated_seconds(self):
        """Simulated wall-clock seconds for everything run so far."""
        return self.cost_model.simulated_seconds(self.trace)

    def cost_breakdown(self):
        return self.cost_model.trace_cost(self.trace)

    def reset_trace(self):
        """Start a fresh measurement window (keeps caches)."""
        self.trace.reset()

    def validate_trace(self):
        """Assert the trace invariants (:mod:`repro.engine.validate`).

        The executor already validates each job as it completes (unless
        ``config.validate_traces`` is off); this re-checks the whole
        trace, e.g. before handing it to the cost model.
        """
        return validate_trace(self.trace)

    def measure(self):
        """Context manager measuring the simulated time of a block::

            with ctx.measure() as measurement:
                program(ctx)
            print(measurement.seconds)

        The surrounding trace is preserved: jobs run inside the block
        are appended as usual, and the measurement reports only their
        cost.
        """
        return _Measurement(self)

    def __repr__(self):
        return (
            "EngineContext(machines=%d, cores=%d, %s)"
            % (
                self.config.machines,
                self.config.total_cores,
                self.trace.summary(),
            )
        )


class _Measurement:
    """Simulated seconds of the jobs run within a ``with`` block."""

    def __init__(self, ctx):
        self._ctx = ctx
        self._start_job = None
        self.seconds = None

    def __enter__(self):
        self._start_job = self._ctx.trace.num_jobs
        return self

    def __exit__(self, exc_type, _exc, _tb):
        cost = 0.0
        for job in self._ctx.trace.jobs[self._start_job:]:
            cost += self._ctx.cost_model.job_cost(job).total_s
        self.seconds = cost
        return False

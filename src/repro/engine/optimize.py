"""The engine's static optimizer passes: shuffle elision, auto-caching.

The executor consults this once per job.  The heavy lifting -- proving
which wide nodes re-shuffle data that is already laid out correctly,
and which UDFs are pure and deterministic -- lives in
:mod:`repro.analysis.properties` and :mod:`repro.analysis.effects`;
this module is the thin engine-side entry point that honors
``ClusterConfig.optimize_shuffles`` / ``optimize_caching``.

Soundness note: a static :class:`~repro.analysis.properties.Elision` is
a *permission*, not a command.  The executor still checks the runtime
preconditions (partition counts match, the origin shuffle's concrete
assignment is registered) and falls back to a normal shuffle when they
do not hold.  Auto-caching is held to a stricter bar: it only fires on
subtrees whose every UDF is *proven* pure and deterministic, because a
cache substitutes one recorded evaluation for repeated evaluations --
only provable effect-freedom makes those interchangeable.
"""

__all__ = [
    "plan_auto_caches",
    "plan_shuffle_elisions",
    "release_layouts",
    "sweep_layouts",
]


def plan_auto_caches(root, config=None):
    """Plan nodes the executor should auto-cache for this plan.

    The NPL301 lint predicts the waste (an uncached node consumed by
    two or more parents recomputes once per consumer); this pass is
    the rewrite that removes it.  A node qualifies when:

    * two or more parent edges consume it (``CoGroup(x, x)`` counts
      twice, matching the lint),
    * it is not already ``cache()``d,
    * it is not a :class:`~repro.engine.plan.Parallelize` (driver data
      re-splits for free) or a :class:`~repro.engine.plan.Union`
      (``flatten_union_inputs`` rewrites unions structurally at
      bag-construction time, keyed on ``cached``; flipping the flag
      later would make plan shape depend on optimizer timing), and
    * every UDF in its subtree is **proven** pure and deterministic by
      :func:`repro.analysis.effects.plan_effects`.  Unknown does not
      qualify: caching trades re-evaluation for replay, which is only
      an equivalence when the subtree provably has no effects for the
      skipped evaluations to skip.

    Returns ``{id(node): node}`` for the qualifying nodes.  The
    executor flips ``node.cached`` and records an ``auto-cache``
    :class:`~repro.core.optimizer.Decision` per entry.
    """
    if config is not None and not getattr(config, "optimize_caching", False):
        return {}
    # Lazy import: repro.analysis imports repro.engine, so engine
    # modules must not import the analysis layer at module scope.
    from ..analysis.effects import plan_effects
    from . import plan as p

    consumers = {}
    for node in p.iter_nodes_ordered(root):
        for child in node.children:
            consumers[id(child)] = consumers.get(id(child), 0) + 1
    reports = None
    chosen = {}
    for node in p.iter_nodes_ordered(root):
        if consumers.get(id(node), 0) < 2 or node.cached:
            continue
        if isinstance(node, (p.Parallelize, p.Union)):
            continue
        if reports is None:
            reports = plan_effects(root)
        report = reports.get(id(node))
        if report is None:
            continue
        if report.pure is True and report.deterministic is True:
            chosen[id(node)] = node
    return chosen


def plan_shuffle_elisions(root, config=None):
    """Shuffles the executor may elide for this plan.

    Args:
        root: The plan's root node.
        config: The cluster config; when it disables
            ``optimize_shuffles`` no elisions are planned.

    Returns:
        ``{id(node): Elision}`` for every wide node whose input is
        provably co-partitioned with the layout the node would build.
    """
    if config is not None and not getattr(config, "optimize_shuffles", True):
        return {}
    # Lazy import: repro.analysis imports repro.engine, so engine
    # modules must not import the analysis layer at module scope.
    from ..analysis.properties import infer_properties

    return infer_properties(root).elisions


def release_layouts(assignments, root):
    """Drop every origin->layout registry entry under ``root``'s subtree.

    ``assignments`` is the executor's cross-job layout registry
    (``{id(node): (weakref(node), {key: bucket})}``).  Entries keep a
    subtree's concrete key assignments available so later jobs can
    adopt the layout; once the artifact built on that subtree is
    released (``Bag.uncache``, artifact-cache eviction), the entries
    are dead weight -- and leaving them behind would let a later plan
    adopt a layout whose backing partitions no longer exist.  The walk
    is iterative (stack, visited set), so loop-unrolled lineages of any
    depth release without recursion.

    The caller holds whatever lock guards ``assignments``.  Returns the
    number of entries removed.
    """
    removed = 0
    stack = [root]
    seen = set()
    while stack:
        node = stack.pop()
        key = id(node)
        if key in seen:
            continue
        seen.add(key)
        if key in assignments:
            del assignments[key]
            removed += 1
        stack.extend(node.children)
    return removed


def sweep_layouts(assignments):
    """Drop registry entries whose origin node has been collected.

    Registry values hold their node only weakly (see
    :class:`~repro.engine.executor.Executor`), so once a one-shot job's
    plan graph is garbage its layouts can never be adopted again; this
    reclaims their entries.  Cached bags keep their subtrees alive, so
    their entries survive the sweep.  The caller holds whatever lock
    guards ``assignments``.  Returns the number of entries dropped.
    """
    dead = [
        key for key, (ref, _layout) in assignments.items()
        if ref() is None
    ]
    for key in dead:
        del assignments[key]
    return len(dead)

"""Fig. 7: data skew (Zipf-distributed group sizes).

Expected (paper Sec. 9.5): outer-parallel always fails with OOM under
this load; Matryoshka's runtime stays within ~15% of the unskewed run;
inner-parallel is an order of magnitude slower.
"""

import pytest

from repro.bench import figures

import os

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


@pytest.mark.parametrize("task", ["bounce_rate", "pagerank"])
def test_fig7_skew(figure_benchmark, task):
    sweep = figure_benchmark(figures.fig7_skew, SCALE, task)
    exponents = sweep.x_values()
    base = sweep.seconds(figures.MATRYOSHKA, exponents[0])
    for exponent in exponents:
        assert sweep.seconds(
            figures.MATRYOSHKA, exponent
        ) <= base * 1.2
    if task == "bounce_rate":
        for exponent in exponents:
            outer = sweep.result_for(figures.OUTER, exponent)
            assert outer.status == "oom"

"""Bounce Rate (paper Sec. 2.1 and Listings 1-3).

The bounce rate of one day is the fraction of that day's visitors who
visited exactly one page.  The nested formulation groups the visit log by
day and applies a whole-bag ``bounce_rate`` function to every group.

Variants provided:

* :func:`bounce_rate_reference` -- driver-side ground truth.
* :func:`bounce_rate_nested` -- Matryoshka (Listing 1 -> flattened).
* :func:`bounce_rate_flat` -- the hand-flattened program of Listing 3
  (what Matryoshka's output is equivalent to; used to validate it).
* :func:`bounce_rate_outer` / :func:`bounce_rate_inner` -- the two
  workarounds.
* :func:`bounce_rate_diql` -- the DIQL baseline's plan.
"""

from ..baselines.diql import DiqlQuery
from ..baselines.inner_parallel import run_inner_parallel
from ..baselines.outer_parallel import run_outer_parallel
from ..core.nestedbag import group_by_key_into_nested_bag


def bounce_rate_reference(records):
    """Ground truth ``{day: bounce_rate}`` computed on the driver."""
    per_day_counts = {}
    for day, ip in records:
        day_counts = per_day_counts.setdefault(day, {})
        day_counts[ip] = day_counts.get(ip, 0) + 1
    return {
        day: sum(1 for count in counts.values() if count == 1)
        / len(counts)
        for day, counts in per_day_counts.items()
    }


def bounce_rate_group_udf(group):
    """Listing 1's UDF, written against the Bag/InnerBag interface.

    Works both on a plain sequential implementation offering the same
    methods and -- after flattening -- on an InnerBag, which is exactly
    the compositionality the paper is after.
    """
    counts_per_ip = group.map(lambda ip: (ip, 1)).reduce_by_key(
        lambda a, b: a + b
    )
    num_bounces = counts_per_ip.filter(lambda kv: kv[1] == 1).count()
    num_total_visitors = group.distinct().count()
    return num_bounces / num_total_visitors


def bounce_rate_nested(visits_bag, lowering=None):
    """Matryoshka: group into a NestedBag and lift the UDF (Listing 2).

    Returns a flat ``Bag[(day, rate)]``.
    """
    per_day = group_by_key_into_nested_bag(visits_bag, lowering)
    rates = per_day.map_inner(bounce_rate_group_udf)
    return rates.to_bag()


def bounce_rate_flat(visits_bag):
    """The manually flattened program (Listing 3), for validation.

    One correction over the listing as printed: a day where *no* IP
    bounced has no record in ``num_bounces_per_day``, so the inner join
    of Listing 3 would silently drop it.  This is precisely the
    empty-inner-bag subtlety of Sec. 4.4 (a lifted ``count`` must
    produce 0), which Matryoshka's tags bag handles automatically; the
    hand-flattened program needs an outer join and a zero default.
    """
    counts_per_ip_per_day = visits_bag.map(
        lambda record: (record, 1)
    ).reduce_by_key(lambda a, b: a + b)
    num_bounces_per_day = (
        counts_per_ip_per_day.filter(lambda kv: kv[1] == 1)
        .map(lambda kv: (kv[0][0], 1))
        .reduce_by_key(lambda a, b: a + b)
    )
    num_total_visitors_per_day = (
        visits_bag.distinct()
        .map(lambda record: (record[0], 1))
        .reduce_by_key(lambda a, b: a + b)
    )
    joined = num_total_visitors_per_day.left_outer_join(
        num_bounces_per_day
    )
    return joined.map(
        lambda kv: (kv[0], (kv[1][1] or 0) / kv[1][0])
    )


def _sequential_bounce_rate(_day, ips):
    counts = {}
    for ip in ips:
        counts[ip] = counts.get(ip, 0) + 1
    bounces = sum(1 for count in counts.values() if count == 1)
    # Two passes over the group: counting and the distinct count.
    return bounces / len(counts), 2 * len(ips)


def bounce_rate_outer(visits_bag):
    """Outer-parallel workaround: sequential UDF per materialized group."""
    return run_outer_parallel(visits_bag, _sequential_bounce_rate)


def _parallel_bounce_rate(ctx, ips):
    bag = ctx.bag_of(ips)
    counts_per_ip = bag.map(lambda ip: (ip, 1)).reduce_by_key(
        lambda a, b: a + b
    )
    num_bounces = counts_per_ip.filter(lambda kv: kv[1] == 1).count()
    num_total = bag.distinct().count()
    return num_bounces / num_total


def bounce_rate_inner(ctx, groups):
    """Inner-parallel workaround: one parallel job chain per day.

    Args:
        ctx: Engine context.
        groups: ``{day: [ips]}`` pre-partitioned input.
    """
    return run_inner_parallel(ctx, groups, _parallel_bounce_rate)


def bounce_rate_diql(visits_bag):
    """The DIQL baseline's compiled plan for this query.

    The per-group bounce-rate UDF is holistic (it needs a per-group
    distinct and a count-of-counts), so DIQL's compiler materializes the
    groups -- the plan the paper observed running out of memory.
    """
    query = (
        DiqlQuery(visits_bag)
        .group_by(lambda record: record[0])
        .aggregate_groups(
            lambda day, records: _sequential_bounce_rate(
                day, [ip for _day, ip in records]
            )[0]
        )
    )
    return query.compile()

"""InnerScalar: lifted scalar values and operations (paper Sec. 4.3)."""

import pytest

from repro.core.primitives import InnerBag, InnerScalar
from repro.errors import FlatteningError


class TestConstruction:
    def test_constant_has_one_value_per_tag(self, lctx):
        scalar = lctx.constant(7)
        assert scalar.as_dict() == {"fruit": 7, "animal": 7}

    def test_from_pairs(self, lctx):
        scalar = lctx.scalars_from_pairs([("fruit", 1), ("animal", 2)])
        assert scalar.as_dict() == {"fruit": 1, "animal": 2}

    def test_representation_is_meta_scale(self, lctx):
        assert lctx.constant(1).repr.is_meta


class TestUnaryScalarOp:
    def test_map(self, lctx):
        scalar = lctx.scalars_from_pairs([("fruit", 2), ("animal", 5)])
        assert scalar.map(lambda x: x * 10).as_dict() == {
            "fruit": 20, "animal": 50,
        }

    def test_negation_operator(self, lctx):
        scalar = lctx.scalars_from_pairs([("fruit", 2), ("animal", -5)])
        assert (-scalar).as_dict() == {"fruit": -2, "animal": 5}

    def test_abs_operator(self, lctx):
        scalar = lctx.scalars_from_pairs([("fruit", -2), ("animal", 5)])
        assert abs(scalar).as_dict() == {"fruit": 2, "animal": 5}


class TestBinaryScalarOp:
    def test_joins_matching_tags(self, lctx):
        a = lctx.scalars_from_pairs([("fruit", 1), ("animal", 2)])
        b = lctx.scalars_from_pairs([("fruit", 10), ("animal", 20)])
        assert (a + b).as_dict() == {"fruit": 11, "animal": 22}

    def test_constant_operand_needs_no_join(self, lctx):
        a = lctx.scalars_from_pairs([("fruit", 1), ("animal", 2)])
        assert (a + 100).as_dict() == {"fruit": 101, "animal": 102}

    def test_reflected_operand(self, lctx):
        a = lctx.scalars_from_pairs([("fruit", 1), ("animal", 2)])
        assert (100 - a).as_dict() == {"fruit": 99, "animal": 98}

    def test_division_listing_2_line_10(self, lctx):
        bounces = lctx.scalars_from_pairs([("fruit", 1), ("animal", 3)])
        totals = lctx.scalars_from_pairs([("fruit", 2), ("animal", 4)])
        rates = bounces / totals
        assert rates.as_dict() == {"fruit": 0.5, "animal": 0.75}

    def test_arithmetic_operators(self, lctx):
        a = lctx.scalars_from_pairs([("fruit", 7), ("animal", 9)])
        b = lctx.scalars_from_pairs([("fruit", 2), ("animal", 3)])
        assert (a * b).as_dict() == {"fruit": 14, "animal": 27}
        assert (a // b).as_dict() == {"fruit": 3, "animal": 3}
        assert (a % b).as_dict() == {"fruit": 1, "animal": 0}
        assert (a ** b).as_dict() == {"fruit": 49, "animal": 729}

    def test_comparisons_yield_boolean_scalars(self, lctx):
        a = lctx.scalars_from_pairs([("fruit", 1), ("animal", 5)])
        assert (a > 3).as_dict() == {"fruit": False, "animal": True}
        assert (a <= 1).as_dict() == {"fruit": True, "animal": False}
        assert (a == 5).as_dict() == {"fruit": False, "animal": True}
        assert (a != 5).as_dict() == {"fruit": True, "animal": False}

    def test_logical_operators(self, lctx):
        a = lctx.scalars_from_pairs(
            [("fruit", True), ("animal", False)]
        )
        b = lctx.constant(True)
        assert (a & b).as_dict() == {"fruit": True, "animal": False}
        assert (a | b).as_dict() == {"fruit": True, "animal": True}
        assert a.logical_not().as_dict() == {
            "fruit": False, "animal": True,
        }
        assert (~a).as_dict() == {"fruit": False, "animal": True}

    def test_cross_context_operands_rejected(self, ctx, lctx):
        from repro.core.nestedbag import group_by_key_into_nested_bag

        other = group_by_key_into_nested_bag(ctx.bag_of([("x", 1)]))
        a = lctx.constant(1)
        b = other.lctx.constant(2)
        with pytest.raises(FlatteningError):
            (a + b).collect()

    def test_inner_bag_operand_rejected(self, nested, lctx):
        with pytest.raises(FlatteningError):
            lctx.constant(1).binary(nested.inner, lambda a, b: a)


class TestScalarGuards:
    def test_bool_collapse_raises(self, lctx):
        scalar = lctx.constant(True)
        with pytest.raises(FlatteningError):
            bool(scalar)

    def test_truthiness_in_if_raises(self, lctx):
        scalar = lctx.constant(1)
        with pytest.raises(FlatteningError):
            if scalar:  # noqa: SIM108 -- deliberately wrong usage
                pass


class TestConversions:
    def test_values_drops_tags(self, lctx):
        scalar = lctx.scalars_from_pairs([("fruit", 1), ("animal", 2)])
        assert sorted(scalar.values().collect()) == [1, 2]

    def test_collect_values(self, lctx):
        scalar = lctx.scalars_from_pairs([("fruit", 1), ("animal", 2)])
        assert sorted(scalar.collect_values()) == [1, 2]

    def test_to_bag_is_the_flat_representation(self, lctx):
        scalar = lctx.scalars_from_pairs([("fruit", 1)])
        assert isinstance(scalar.to_bag().collect(), list)

    def test_with_context_rebinds(self, lctx):
        scalar = lctx.constant(3)
        derived = lctx.derive(lctx.tags, lctx.num_tags)
        rebound = scalar.with_context(derived)
        assert isinstance(rebound, InnerScalar)
        assert rebound.lctx is derived


class TestSizeInvariant:
    def test_all_inner_scalars_share_tag_cardinality(self, lctx):
        """Paper Sec. 8.1: every InnerScalar in a lifted UDF has the same
        size -- one value per tag."""
        scalars = [
            lctx.constant(0),
            lctx.constant(0).map(lambda x: x + 1),
            lctx.constant(1) + lctx.constant(2),
        ]
        for scalar in scalars:
            pairs = scalar.collect()
            assert len(pairs) == lctx.num_tags
            assert len({tag for tag, _v in pairs}) == lctx.num_tags

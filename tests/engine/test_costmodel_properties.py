"""Property-based sanity of the cost model.

The absolute constants are calibration; these properties are what the
benchmark conclusions actually rest on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ClusterConfig, CostModel, EngineContext
from repro.engine.costmodel import _makespan
from repro.engine.metrics import ExecutionTrace


def run_trace(config, records, num_groups):
    ctx = EngineContext(config)
    bag = ctx.bag_of([(i % num_groups, i) for i in range(records)])
    bag.reduce_by_key(lambda a, b: a + b).collect()
    return ctx.trace, ctx.cost_model


machines = st.integers(min_value=1, max_value=40)
records = st.integers(min_value=1, max_value=400)


@settings(max_examples=25, deadline=None)
@given(machines_a=machines, machines_b=machines, n=records)
def test_more_machines_never_slower(machines_a, machines_b, n):
    low, high = sorted((machines_a, machines_b))
    config = ClusterConfig(machines=low, cores_per_machine=4)
    trace, _model = run_trace(config, n, num_groups=max(1, n // 4))
    slow = CostModel(config).simulated_seconds(trace)
    fast = CostModel(
        config.with_machines(high)
    ).simulated_seconds(trace)
    assert fast <= slow + 1e-9


@settings(max_examples=25, deadline=None)
@given(n_small=records, n_big=records)
def test_more_records_cost_at_least_as_much(n_small, n_big):
    small, big = sorted((n_small, n_big))
    config = ClusterConfig(machines=2, cores_per_machine=4)
    trace_small, model = run_trace(config, small, num_groups=4)
    trace_big, _ = run_trace(config, big, num_groups=4)
    assert model.simulated_seconds(
        trace_big
    ) >= model.simulated_seconds(trace_small) - 1e-9


@settings(max_examples=25, deadline=None)
@given(n=records)
def test_cost_is_positive_and_finite(n):
    config = ClusterConfig(machines=2, cores_per_machine=4)
    trace, model = run_trace(config, n, num_groups=3)
    seconds = model.simulated_seconds(trace)
    assert seconds > 0
    assert seconds == seconds and seconds != float("inf")


@settings(max_examples=30, deadline=None)
@given(
    tasks=st.lists(
        st.integers(min_value=0, max_value=100), max_size=20
    ),
    slots=st.integers(min_value=1, max_value=16),
)
def test_makespan_bounds(tasks, slots):
    span = _makespan(tasks, slots)
    total = sum(tasks)
    biggest = max(tasks, default=0)
    # Lower bounds: the biggest task, and perfect parallelism.
    assert span >= biggest
    assert span * slots >= total or len(
        [t for t in tasks if t]
    ) <= slots
    # Upper bound: fully serial.
    assert span <= total


@settings(max_examples=30, deadline=None)
@given(
    tasks=st.lists(
        st.integers(min_value=0, max_value=100), max_size=20
    ),
    slots_a=st.integers(min_value=1, max_value=16),
    slots_b=st.integers(min_value=1, max_value=16),
)
def test_makespan_monotone_in_slots(tasks, slots_a, slots_b):
    low, high = sorted((slots_a, slots_b))
    assert _makespan(tasks, high) <= _makespan(tasks, low)


def test_empty_trace_is_free():
    model = CostModel(ClusterConfig())
    assert model.simulated_seconds(ExecutionTrace()) == 0.0


@settings(max_examples=15, deadline=None)
@given(n=records)
def test_cost_additive_over_jobs(n):
    config = ClusterConfig(machines=2, cores_per_machine=4)
    ctx = EngineContext(config)
    bag = ctx.bag_of(list(range(n)))
    bag.count()
    one = ctx.simulated_seconds()
    bag.count()
    two = ctx.simulated_seconds()
    assert abs(two - 2 * one) < 1e-9

"""Effect & determinism analysis over UDFs: the NPL5xx prover.

The engine's retries (PR 2), straggler re-execution, DAG-parallel
re-dispatch (PR 6), shuffle elision (PR 5), and the cross-job artifact
cache (PR 7) are only sound when UDFs are pure and deterministic --
until now that was assumed silently.  This module *proves* it where it
can: a conservative, interprocedural AST analysis assigns every UDF a
tri-state verdict per effect dimension:

* **purity** -- the UDF mutates no state that outlives the call:
  no ``global``/``nonlocal``, no mutation of captured objects, module
  globals, arguments, or mutable default arguments (stores into their
  subscripts/attributes, calls to known mutating methods).
* **determinism** -- same inputs, same outputs: no module-level
  ``random``, ``time``, ``uuid``, ``secrets``, ``os.urandom``; no
  ``id()``; no ``hash()`` on ``PYTHONHASHSEED``-sensitive values; no
  iteration over ``set``/``frozenset`` (whose order varies run to
  run).  ``dict`` iteration is insertion-ordered in the supported
  Pythons and therefore fine; ``random.Random(seed)`` with an explicit
  seed is fine.
* **io-freedom** -- no external effects: no ``open``/``print``/
  ``input``, no file/network/process modules.

Verdicts are the familiar tri-state of
:func:`~repro.analysis.properties.udf_preserves_key`: ``True``
(*proven*), ``False`` (*refuted*, with located reasons), ``None``
(*unknown* -- some construct escaped the analysis).  The analysis is
conservative by construction: it only answers ``True`` when every
reachable construct is on an explicit allow-list, so an *actual* effect
can never be proven away; anything unmodeled degrades to ``None``.

Interprocedural: calls to bare names are resolved through the
function's closure cells and ``__globals__`` (or, for the static
source pass, the defining module's AST) and analyzed transitively --
a bounded, cycle-safe call-graph walk, so a UDF calling a module-level
helper inherits the helper's effects at the call site.

Consumers:

* :func:`repro.analysis.analyze_udf` / the CLI surface refuted
  dimensions as NPL501 (impure), NPL502 (nondeterministic), NPL503
  (I/O) diagnostics;
* the task runtime gates silent retry / speculative re-execution on
  :func:`task_effects` verdicts (:mod:`repro.engine.runtime.scheduler`);
* the optimizer's auto-cache rewrite requires a *proven* pure and
  deterministic subtree (:func:`repro.engine.optimize.plan_auto_caches`
  via :func:`plan_effects`);
* the serve layer keys cross-job artifacts by
  :func:`fingerprint_function` and refuses reuse for refuted programs;
* ``Bag.explain(effects=True)`` renders :func:`effects_notes`.

Import direction: like :mod:`repro.analysis.properties`, this module
imports :mod:`repro.engine.plan` only; the engine reaches back lazily.
"""

import ast
import builtins
import hashlib
import types

from ..engine import plan as p
from .properties import function_ast
from .udf_lint import _MUTATING_METHODS

__all__ = [
    "DETERMINISM",
    "IO",
    "PURITY",
    "EffectReason",
    "EffectReport",
    "analyze_effects",
    "combine_reports",
    "effect_diagnostics",
    "effects_notes",
    "fingerprint_function",
    "plan_effects",
    "plan_fingerprint",
    "runtime_resolver",
    "scan_effects",
    "static_resolver",
    "subtree_effects",
    "task_effects",
    "verdict",
]

#: The three effect dimensions.
PURITY = "purity"
DETERMINISM = "determinism"
IO = "io"

_DIMENSIONS = (PURITY, DETERMINISM, IO)

#: Interprocedural call-graph depth bound.
_MAX_DEPTH = 5

#: Diagnostic code per refuted dimension (see ``diagnostics.CODES``).
DIMENSION_CODES = {PURITY: "NPL501", DETERMINISM: "NPL502", IO: "NPL503"}


def verdict(value):
    """Human name of a tri-state: ``proven`` / ``refuted`` / ``unknown``."""
    if value is True:
        return "proven"
    if value is False:
        return "refuted"
    return "unknown"


class EffectReason:
    """Why a dimension is refuted (or merely unknown).

    Attributes:
        dimension: :data:`PURITY`, :data:`DETERMINISM`, or :data:`IO`.
        refuting: ``True`` for a definite effect, ``False`` for a
            construct that merely escapes the analysis (unknown).
        message: Human-readable description.
        line / col: 1-based source position within the analyzed file
            (0 when unavailable).
    """

    __slots__ = ("dimension", "refuting", "message", "line", "col")

    def __init__(self, dimension, refuting, message, line=0, col=0):
        self.dimension = dimension
        self.refuting = refuting
        self.message = message
        self.line = line
        self.col = col

    def __repr__(self):
        return "EffectReason(%s, %s, %r)" % (
            self.dimension,
            "refuted" if self.refuting else "unknown",
            self.message,
        )


class EffectReport:
    """Tri-state effect verdicts for one UDF (or a combination).

    Attributes:
        pure / deterministic / io_free: ``True`` (proven), ``False``
            (refuted), or ``None`` (unknown).
        reasons: Tuple of :class:`EffectReason` explaining every
            refutation and unknown.
    """

    __slots__ = ("pure", "deterministic", "io_free", "reasons")

    def __init__(self, pure=True, deterministic=True, io_free=True,
                 reasons=()):
        self.pure = pure
        self.deterministic = deterministic
        self.io_free = io_free
        self.reasons = tuple(reasons)

    @classmethod
    def opaque(cls, message):
        """Everything unknown (source unavailable, depth exceeded...)."""
        return cls(
            pure=None, deterministic=None, io_free=None,
            reasons=[
                EffectReason(dim, False, message) for dim in _DIMENSIONS
            ],
        )

    @property
    def proven(self):
        """Proven pure, deterministic, *and* io-free."""
        return (
            self.pure is True
            and self.deterministic is True
            and self.io_free is True
        )

    def value(self, dimension):
        if dimension == PURITY:
            return self.pure
        if dimension == DETERMINISM:
            return self.deterministic
        return self.io_free

    def summary(self):
        """Compact one-line rendering, e.g. ``pure det io-free``."""
        words = {
            PURITY: ("pure", "impure", "pure?"),
            DETERMINISM: ("det", "nondet", "det?"),
            IO: ("io-free", "io", "io?"),
        }
        tokens = []
        for dim in _DIMENSIONS:
            proven_w, refuted_w, unknown_w = words[dim]
            value = self.value(dim)
            if value is True:
                tokens.append(proven_w)
            elif value is False:
                tokens.append(refuted_w)
            else:
                tokens.append(unknown_w)
        return " ".join(tokens)

    def __repr__(self):
        return "EffectReport(pure=%s, deterministic=%s, io_free=%s)" % (
            verdict(self.pure),
            verdict(self.deterministic),
            verdict(self.io_free),
        )


def combine_reports(reports):
    """Merge reports: any refuted wins, else any unknown, else proven."""
    values = {dim: True for dim in _DIMENSIONS}
    reasons = []
    for report in reports:
        for dim in _DIMENSIONS:
            value = report.value(dim)
            if value is False:
                values[dim] = False
            elif value is None and values[dim] is not False:
                values[dim] = None
        reasons.extend(report.reasons)
    return EffectReport(
        pure=values[PURITY],
        deterministic=values[DETERMINISM],
        io_free=values[IO],
        reasons=reasons,
    )


# ----------------------------------------------------------------------
# Allow/deny tables
# ----------------------------------------------------------------------

#: Builtins that are pure, deterministic and io-free.  ``id``,
#: ``hash``, ``print``, ``open``, ``input`` are handled specially.
_PURE_BUILTINS = frozenset({
    "abs", "all", "any", "bin", "bool", "bytes", "callable", "chr",
    "complex", "dict", "divmod", "enumerate", "filter", "float",
    "format", "frozenset", "getattr", "hasattr", "hex", "int",
    "isinstance", "issubclass", "iter", "len", "list", "map", "max",
    "min", "next", "oct", "ord", "pow", "range", "repr", "reversed",
    "round", "set", "slice", "sorted", "str", "sum", "tuple", "type",
    "zip",
})

#: Builtin calls whose result is a *fresh* object (mutating it cannot
#: touch caller state) -- the crucial ``new = list(old)`` idiom.
_FRESH_BUILDERS = frozenset({
    "dict", "enumerate", "filter", "frozenset", "list", "map", "range",
    "reversed", "set", "sorted", "str", "bytes", "tuple", "zip",
})

#: Modules whose attribute calls are pure, deterministic, io-free.
_PURE_MODULES = frozenset({
    "bisect", "collections", "decimal", "fractions", "functools",
    "heapq", "itertools", "json", "math", "operator", "re",
    "statistics", "string",
})

#: Modules whose attribute calls refute determinism (module-level
#: shared state / wall clocks / entropy).
_NONDET_MODULES = frozenset({"random", "time", "uuid", "secrets"})

#: Modules whose attribute calls refute io-freedom.
_IO_MODULES = frozenset({
    "ftplib", "http", "logging", "pathlib", "requests", "shutil",
    "smtplib", "socket", "sqlite3", "subprocess", "sys", "urllib",
})

_OS_NONDET_ATTRS = frozenset({
    "cpu_count", "getpid", "getppid", "getrandom", "times", "urandom",
})

_OS_IO_ATTRS = frozenset({
    "chdir", "chmod", "chown", "close", "listdir", "makedirs", "mkdir",
    "open", "popen", "read", "remove", "removedirs", "rename",
    "replace", "rmdir", "scandir", "system", "unlink", "walk", "write",
})

_DATETIME_NONDET_ATTRS = frozenset({"now", "time", "today", "utcnow"})

#: Method names that never mutate their receiver (and are
#: deterministic, io-free): str/dict/tuple/set query methods.
_NON_MUTATING_METHODS = frozenset({
    "as_integer_ratio", "bit_length", "capitalize", "casefold", "copy",
    "count", "decode", "difference", "encode", "endswith", "find",
    "format", "get", "hex", "index", "intersection", "isalnum",
    "isalpha", "isdigit", "isdisjoint", "isspace", "issubset",
    "issuperset", "items", "join", "keys", "ljust", "lower", "lstrip",
    "most_common", "partition", "replace", "rfind", "rjust",
    "rpartition", "rsplit", "rstrip", "split", "splitlines",
    "startswith", "strip", "symmetric_difference", "title",
    "total_seconds", "union", "upper", "values", "zfill",
})

#: Value-returning methods of a *locally seeded* ``random.Random``
#: generator: deterministic given the seed, and they touch only the
#: generator's own fresh state.  The module-level twins draw from
#: process-global state and stay refuted.
_SEEDED_RNG_METHODS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "normalvariate", "paretovariate", "randint",
    "random", "randrange", "sample", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

#: Engine plan-building methods (the Bag / LiftedContext DSL): lazy
#: plan construction is pure and deterministic by design, and any UDF
#: arguments passed to them are lambdas inside the scanned body, which
#: the same walk already covers.
_ENGINE_METHODS = frozenset({
    "aggregate_by_key", "as_meta", "bag_of", "binary", "broadcast",
    "cache", "coalesce", "cogroup", "collect", "collect_as_map",
    "collect_per_tag", "count", "count_by_key", "cross", "dataset",
    "distinct", "filter", "flat_map", "fold", "group_by",
    "group_by_key", "is_empty", "join", "key_by", "left_outer_join",
    "map", "map_partitions", "map_values", "map_with_closure",
    "reduce", "reduce_by_key", "sample", "save", "subtract_by_key",
    "sum", "swap", "take", "to_bag", "top", "with_label",
    "zip_with_unique_id",
})


# ----------------------------------------------------------------------
# The scanner
# ----------------------------------------------------------------------


def scan_effects(fndef, resolver=None, line_offset=0, col_offset=0,
                 self_fresh=False, _visited=None, _depth=_MAX_DEPTH):
    """Scan one function AST; returns an :class:`EffectReport`.

    Args:
        fndef: An ``ast.FunctionDef`` / ``ast.AsyncFunctionDef`` /
            ``ast.Lambda``.
        resolver: Optional call resolver (see :class:`_RuntimeResolver`
            / :class:`_StaticResolver`); ``None`` leaves every bare
            call unresolved (unknown).
        line_offset / col_offset: Added to reason positions so they
            map back onto the defining file.
        self_fresh: Treat the first parameter as a *fresh* object --
            used when analyzing a constructor reached through a class
            call, where ``self`` is a brand-new instance.
    """
    scanner = _Scanner(
        fndef, resolver, line_offset, col_offset, self_fresh,
        _visited if _visited is not None else frozenset(), _depth,
    )
    return scanner.run()


class _Scanner:
    def __init__(self, fndef, resolver, line_offset, col_offset,
                 self_fresh, visited, depth):
        self.fndef = fndef
        self.resolver = resolver
        self.line_offset = line_offset
        self.col_offset = col_offset
        self.visited = visited
        self.depth = depth
        self.values = {dim: True for dim in _DIMENSIONS}
        self.reasons = []
        self.params = self._param_names()
        self.mutable_defaults = self._mutable_default_params()
        if self_fresh and self.params:
            self.fresh_self = next(iter(self._ordered_params()))
        else:
            self.fresh_self = None
        self.bound = self._bound_names()
        self.local_callables = self._local_callable_names()

    # -- setup ---------------------------------------------------------

    def _ordered_params(self):
        args = self.fndef.args
        ordered = []
        for arg in (getattr(args, "posonlyargs", []) + args.args
                    + args.kwonlyargs):
            ordered.append(arg.arg)
        if args.vararg:
            ordered.append(args.vararg.arg)
        if args.kwarg:
            ordered.append(args.kwarg.arg)
        return ordered

    def _param_names(self):
        return set(self._ordered_params())

    def _mutable_default_params(self):
        """Parameter names whose default value is a mutable container."""
        args = self.fndef.args
        mutable = set()
        positional = getattr(args, "posonlyargs", []) + args.args
        for arg, default in zip(
            positional[len(positional) - len(args.defaults):],
            args.defaults,
        ):
            if _is_mutable_literal(default):
                mutable.add(arg.arg)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None and _is_mutable_literal(default):
                mutable.add(arg.arg)
        return mutable

    def _bound_names(self):
        """Names bound anywhere inside the function (scope-blind
        over-approximation, the safe direction for capture checks)."""
        bound = set(self.params)
        for node in ast.walk(self.fndef):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                bound.add(node.id)
            elif isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                if node is not self.fndef:
                    bound.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound.add((alias.asname or alias.name).split(".")[0])
            elif isinstance(node, ast.comprehension):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
            elif isinstance(node, ast.ExceptHandler) and node.name:
                bound.add(node.name)
        return bound

    def _local_callable_names(self):
        """Names whose calls are already covered by this very walk:
        nested ``def``s and names assigned a lambda directly."""
        names = set()
        for node in ast.walk(self.fndef):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and node is not self.fndef:
                names.add(node.name)
            elif (isinstance(node, ast.Assign)
                  and isinstance(node.value, ast.Lambda)):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    # -- taint fixpoint ------------------------------------------------

    def _compute_taint(self):
        """Two tiers of names that may alias externally-visible state.

        *direct*: parameters, captured/global reads, and simple alias
        chains of those (``x = param``, ``x = param[k]``,
        ``x = obj.attr``) -- mutating one is a *proven* effect.

        *maybe*: anything reached through coarser flows (call results,
        conditionals...) -- mutating one downgrades purity to
        *unknown*, never to refuted, because the alias is speculative.

        An assignment propagates no taint when its right-hand side
        provably constructs a *fresh* object (literal, comprehension,
        class instantiation, copy via ``list()``/``.copy()``/slice).
        Iterated to a fixpoint because ``ast.walk`` order is not
        execution order; both sets over-approximate.
        """
        direct = set(self.params)
        if self.fresh_self is not None:
            direct.discard(self.fresh_self)
        for node in ast.walk(self.fndef):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ) and node.id not in self.bound:
                direct.add(node.id)
        maybe = set(direct)
        assignments = self._assignments()
        changed = True
        while changed:
            changed = False
            for targets, value in assignments:
                if value is None or self._expr_fresh(value):
                    continue
                alias_root = _alias_root(value)
                if alias_root is not None and alias_root in direct:
                    for name in targets:
                        if name not in direct:
                            direct.add(name)
                            changed = True
                if _names_in(value) & maybe:
                    for name in targets:
                        if name not in maybe:
                            maybe.add(name)
                            changed = True
        return direct, maybe

    def _assignments(self):
        """``(target_names, value_expr)`` pairs for taint propagation."""
        pairs = []
        for node in ast.walk(self.fndef):
            if isinstance(node, ast.Assign):
                names = set()
                for target in node.targets:
                    names |= _target_names(target)
                pairs.append((names, node.value))
            elif isinstance(node, ast.AnnAssign):
                pairs.append((_target_names(node.target), node.value))
            elif isinstance(node, ast.AugAssign):
                pairs.append((_target_names(node.target), node.value))
            elif isinstance(node, ast.NamedExpr):
                pairs.append((_target_names(node.target), node.value))
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                pairs.append((_target_names(node.target), node.iter))
            elif isinstance(node, ast.comprehension):
                pairs.append((_target_names(node.target), node.iter))
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        pairs.append((
                            _target_names(item.optional_vars),
                            item.context_expr,
                        ))
        return pairs

    def _expr_fresh(self, expr):
        """Does ``expr`` provably construct a fresh object?"""
        if isinstance(expr, (ast.Constant, ast.List, ast.Tuple,
                             ast.Dict, ast.Set, ast.ListComp,
                             ast.SetComp, ast.DictComp,
                             ast.GeneratorExp, ast.Compare,
                             ast.JoinedStr, ast.BinOp, ast.UnaryOp)):
            return True
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if func.id in self.bound:
                    return False
                if func.id in _FRESH_BUILDERS:
                    return True
                # Class instantiation always yields a new object.
                return (self.resolver is not None
                        and self.resolver.resolves_to_class(func.id))
            if isinstance(func, ast.Attribute) and func.attr == "copy":
                return True
            return False
        if isinstance(expr, ast.Subscript):
            return isinstance(expr.slice, ast.Slice)
        return False

    def _compute_set_valued(self):
        """Names that may hold a ``set``/``frozenset``."""
        set_valued = set()
        assignments = self._assignments()
        changed = True
        while changed:
            changed = False
            for targets, value in assignments:
                if value is None:
                    continue
                if not self._expr_set_valued(value, set_valued):
                    continue
                for name in targets:
                    if name not in set_valued:
                        set_valued.add(name)
                        changed = True
        return set_valued

    def _expr_set_valued(self, expr, set_valued):
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            func = expr.func
            return (isinstance(func, ast.Name)
                    and func.id in ("set", "frozenset")
                    and func.id not in self.bound)
        if isinstance(expr, ast.Name):
            return expr.id in set_valued
        if isinstance(expr, ast.BinOp):
            # set algebra: `a | b` of sets stays a set
            return (self._expr_set_valued(expr.left, set_valued)
                    or self._expr_set_valued(expr.right, set_valued))
        return False

    def _compute_seeded_rngs(self):
        """Local names holding an explicitly seeded ``random.Random``."""
        seeded = set()
        changed = True
        while changed:
            changed = False
            for targets, value in self._assignments():
                if value is None:
                    continue
                if not self._expr_seeded_rng(value, seeded):
                    continue
                for name in targets:
                    if name not in seeded:
                        seeded.add(name)
                        changed = True
        return seeded

    def _expr_seeded_rng(self, expr, seeded):
        if isinstance(expr, ast.Name):
            return expr.id in seeded
        if isinstance(expr, ast.Call) and expr.args:
            dotted = _dotted_parts(expr.func)
            if dotted is None or dotted[-1] != "Random":
                return False
            root = dotted[0]
            return (root not in self.bound
                    and self._module_name(root) == "random")
        return False

    # -- verdict bookkeeping -------------------------------------------

    def _refute(self, dimension, node, message):
        self.values[dimension] = False
        self.reasons.append(EffectReason(
            dimension, True, message,
            line=getattr(node, "lineno", 0) + self.line_offset,
            col=getattr(node, "col_offset", -1) + self.col_offset + 1,
        ))

    def _unknown(self, dimension, node, message):
        if self.values[dimension] is not False:
            self.values[dimension] = None
        self.reasons.append(EffectReason(
            dimension, False, message,
            line=getattr(node, "lineno", 0) + self.line_offset,
            col=getattr(node, "col_offset", -1) + self.col_offset + 1,
        ))

    def _unknown_all(self, node, message):
        for dimension in _DIMENSIONS:
            self._unknown(dimension, node, message)

    def _describe_root(self, name):
        """What kind of external state a tainted root name denotes."""
        if name in self.mutable_defaults:
            return "mutable default argument %r" % name
        if name in self.params:
            return "argument %r" % name
        return "captured or global variable %r" % name

    # -- main pass -----------------------------------------------------

    def run(self):
        self.tainted, self.maybe_tainted = self._compute_taint()
        self.set_valued = self._compute_set_valued()
        self.seeded_rngs = self._compute_seeded_rngs()
        for node in ast.walk(self.fndef):
            self._visit(node)
        return EffectReport(
            pure=self.values[PURITY],
            deterministic=self.values[DETERMINISM],
            io_free=self.values[IO],
            reasons=self.reasons,
        )

    def _visit(self, node):
        if isinstance(node, ast.Global):
            self._refute(
                PURITY, node,
                "global declaration of %s mutates module state"
                % ", ".join(repr(n) for n in node.names),
            )
        elif isinstance(node, ast.Nonlocal):
            self._refute(
                PURITY, node,
                "nonlocal declaration of %s mutates enclosing state"
                % ", ".join(repr(n) for n in node.names),
            )
        elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                self._check_store(target)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    self._check_store(target)
        elif isinstance(node, ast.Call):
            self._check_call(node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._check_iteration(node.iter)
        elif isinstance(node, ast.comprehension):
            self._check_iteration(node.iter)

    def _check_store(self, target):
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_store(element)
            return
        if isinstance(target, ast.Starred):
            self._check_store(target.value)
            return
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return  # rebinding a local name is pure
        root, depth = target, 0
        while isinstance(root, (ast.Subscript, ast.Attribute)):
            root = root.value
            depth += 1
        if isinstance(root, ast.Name):
            if root.id in self.tainted:
                self._refute(
                    PURITY, target,
                    "assignment into %s mutates state that outlives "
                    "the call" % self._describe_root(root.id),
                )
            elif root.id in self.maybe_tainted:
                self._unknown(
                    PURITY, target,
                    "assignment into %r, which may alias state that "
                    "outlives the call" % root.id,
                )
            elif depth > 1:
                # A fresh list/dict is a *shallow* copy: one level of
                # stores rebinds its own slots, deeper stores may hit
                # elements shared with the original.
                self._unknown(
                    PURITY, target,
                    "nested assignment through fresh %r may mutate a "
                    "shared element" % root.id,
                )
        else:
            self._unknown(
                PURITY, target,
                "assignment into an expression whose target cannot be "
                "traced to a fresh object",
            )

    def _check_iteration(self, iter_expr):
        if self._expr_set_valued(iter_expr, self.set_valued):
            self._refute(
                DETERMINISM, iter_expr,
                "iteration over a set: element order depends on "
                "PYTHONHASHSEED and varies across runs",
            )

    # -- calls ---------------------------------------------------------

    def _check_call(self, node):
        func = node.func
        if isinstance(func, ast.Name):
            self._check_name_call(node, func.id)
        elif isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)
        elif isinstance(func, ast.Lambda):
            pass  # the lambda body is walked by this same scan
        else:
            self._unknown_all(
                node,
                "call through a computed expression; effects unknown",
            )

    def _check_name_call(self, node, name):
        if name in self.bound:
            if name not in self.local_callables:
                self._unknown_all(
                    node,
                    "call to locally-bound callable %r; effects "
                    "unknown" % name,
                )
            return  # nested defs/lambdas: bodies covered by this walk
        if name == "id":
            self._refute(
                DETERMINISM, node,
                "id() depends on object addresses, which vary across "
                "processes and runs",
            )
            return
        if name == "hash":
            if not (len(node.args) == 1
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, (int, bool))):
                self._refute(
                    DETERMINISM, node,
                    "hash() on PYTHONHASHSEED-sensitive values varies "
                    "across interpreter runs",
                )
            return
        if name == "input":
            self._refute(DETERMINISM, node, "input() reads the console")
            self._refute(IO, node, "input() reads the console")
            return
        if name == "print":
            self._refute(IO, node, "print() writes to stdout")
            return
        if name == "open":
            self._refute(IO, node, "open() performs file I/O")
            return
        if name in ("exec", "eval", "compile", "globals", "locals",
                    "vars", "setattr", "delattr"):
            self._unknown_all(
                node, "call to %s(); effects unknown" % name
            )
            return
        if name in _PURE_BUILTINS:
            return
        self._resolve_and_merge(node, name)

    def _check_attribute_call(self, node, func):
        dotted = _dotted_parts(func)
        if dotted is not None:
            root = dotted[0]
            if root not in self.bound:
                module = self._module_name(root)
                if module is not None:
                    self._check_module_call(node, module, dotted)
                    return
        # A method call on an object.
        attr = func.attr
        if self._expr_seeded_rng(func.value, self.seeded_rngs):
            if attr in _SEEDED_RNG_METHODS or attr == "seed":
                return
            if attr == "shuffle" and node.args:
                root = node.args[0]
                if isinstance(root, ast.Name):
                    if root.id in self.tainted:
                        self._refute(
                            PURITY, node,
                            "shuffle() reorders %s in place"
                            % self._describe_root(root.id),
                        )
                    elif root.id in self.maybe_tainted:
                        self._unknown(
                            PURITY, node,
                            "shuffle() reorders %r, which may alias "
                            "state that outlives the call" % root.id,
                        )
                    return  # fresh local list: pure, seeded: det
            self._unknown_all(
                node,
                "method call .%s() on a random.Random; effects "
                "unknown" % attr,
            )
            return
        if attr in _MUTATING_METHODS:
            receiver = func.value
            if isinstance(receiver, ast.Name):
                if receiver.id in self.tainted:
                    self._refute(
                        PURITY, node,
                        "call to .%s() mutates %s in place"
                        % (attr, self._describe_root(receiver.id)),
                    )
                elif receiver.id in self.maybe_tainted:
                    self._unknown(
                        PURITY, node,
                        "call to .%s() on %r, which may alias state "
                        "that outlives the call" % (attr, receiver.id),
                    )
                elif (attr == "pop"
                      and receiver.id in self.set_valued
                      and not node.args):
                    self._refute(
                        DETERMINISM, node,
                        "set.pop() removes an arbitrary element",
                    )
            else:
                # A subscript/attribute path (``adj[u].append``) may
                # reach elements shared with the caller even when the
                # container itself is fresh: unknown either way.
                self._unknown(
                    PURITY, node,
                    "call to .%s() on an expression whose receiver "
                    "cannot be traced to a fresh object" % attr,
                )
            return
        if attr in _NON_MUTATING_METHODS or attr in _ENGINE_METHODS:
            return
        self._unknown_all(
            node,
            "method call .%s() on a value of unknown type; effects "
            "unknown" % attr,
        )

    def _module_name(self, root_name):
        """Real module name behind ``root_name``, or None."""
        if self.resolver is not None:
            return self.resolver.module_name(root_name)
        return None

    def _check_module_call(self, node, module, dotted):
        dotted_name = ".".join([module] + list(dotted[1:]))
        attr = dotted[-1]
        if module in _PURE_MODULES:
            return
        if module == "random":
            # An explicitly seeded generator is deterministic; the
            # module-level functions draw from shared unseeded state.
            if attr == "Random" and node.args:
                return
            self._refute(
                DETERMINISM, node,
                "%s() draws from process-global random state"
                % dotted_name,
            )
            return
        if module in _NONDET_MODULES:
            self._refute(
                DETERMINISM, node,
                "%s() is nondeterministic across runs" % dotted_name,
            )
            return
        if module == "os":
            if len(dotted) >= 2 and dotted[1] == "path":
                return  # os.path.* is pure string manipulation
            if attr in _OS_NONDET_ATTRS:
                self._refute(
                    DETERMINISM, node,
                    "%s() is nondeterministic across runs" % dotted_name,
                )
            elif attr in _OS_IO_ATTRS:
                self._refute(
                    IO, node,
                    "%s() touches the filesystem or spawns processes"
                    % dotted_name,
                )
            else:
                self._unknown_all(
                    node, "call to %s(); effects unknown" % dotted_name
                )
            return
        if module == "datetime":
            if attr in _DATETIME_NONDET_ATTRS:
                self._refute(
                    DETERMINISM, node,
                    "%s() reads the wall clock" % dotted_name,
                )
            return
        if module in _IO_MODULES:
            self._refute(
                IO, node,
                "%s() performs external I/O" % dotted_name,
            )
            return
        self._unknown_all(
            node, "call to %s(); effects unknown" % dotted_name
        )

    def _resolve_and_merge(self, node, name):
        """Interprocedural step: inherit a called helper's effects."""
        report = None
        if self.resolver is not None and self.depth > 0:
            report = self.resolver.resolve_call(
                name, self.visited, self.depth - 1
            )
        if report is None:
            if _is_builtin_exception(name):
                return  # constructing (and raising) exceptions is pure
            self._unknown_all(
                node,
                "call to %r is not statically resolvable; effects "
                "unknown" % name,
            )
            return
        for dim in _DIMENSIONS:
            value = report.value(dim)
            if value is True:
                continue
            line = getattr(node, "lineno", 0) + self.line_offset
            col = getattr(node, "col_offset", -1) + self.col_offset + 1
            detail = ""
            for reason in report.reasons:
                if reason.dimension == dim and reason.refuting == (
                    value is False
                ):
                    detail = ": %s" % reason.message
                    break
            if value is False:
                self.values[dim] = False
                self.reasons.append(EffectReason(
                    dim, True,
                    "call to %s()%s" % (name, detail), line, col,
                ))
            else:
                if self.values[dim] is not False:
                    self.values[dim] = None
                self.reasons.append(EffectReason(
                    dim, False,
                    "call to %s()%s" % (name, detail), line, col,
                ))


def _is_mutable_literal(node):
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "dict", "set", "bytearray",
                            "defaultdict", "deque", "Counter")
    )


def _target_names(target):
    """Names *rebound* by an assignment target.

    A store into ``obj.attr`` / ``obj[key]`` does not rebind ``obj``
    (the mutation itself is judged by the purity pass), so only plain
    names -- possibly under tuple/list/star unpacking -- count.
    """
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names = set()
        for element in target.elts:
            names |= _target_names(element)
        return names
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return set()


def _alias_root(expr):
    """The root name of a simple alias expression (``x`` / ``x[k]`` /
    ``x.attr`` chains), or None for anything coarser."""
    node = expr
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_builtin_exception(name):
    value = getattr(builtins, name, None)
    return isinstance(value, type) and issubclass(value, BaseException)


def _names_in(expr):
    return {
        node.id
        for node in ast.walk(expr)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


def _dotted_parts(func):
    """``("os", "path", "join")`` for a dotted call target, or None."""
    parts = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return tuple(parts)


# ----------------------------------------------------------------------
# Runtime resolution (live function objects)
# ----------------------------------------------------------------------

_EFFECTS_CACHE = {}


class _RuntimeResolver:
    """Resolves bare-name calls through a live function's closure
    cells and ``__globals__``."""

    def __init__(self, fn):
        self.fn = fn
        self.cells = {}
        code = getattr(fn, "__code__", None)
        closure = getattr(fn, "__closure__", None)
        if code is not None and closure:
            for name, cell in zip(code.co_freevars, closure):
                try:
                    self.cells[name] = cell.cell_contents
                except ValueError:  # pragma: no cover - empty cell
                    continue

    def _lookup(self, name):
        if name in self.cells:
            return self.cells[name]
        value = getattr(self.fn, "__globals__", {}).get(name)
        if value is None:
            value = getattr(builtins, name, None)
        return value

    def module_name(self, name):
        value = self._lookup(name)
        if isinstance(value, types.ModuleType):
            return value.__name__.rsplit(".", 1)[-1]
        if value is None:
            return name  # fall back to the syntactic name
        return None

    def resolves_to_class(self, name):
        return isinstance(self._lookup(name), type)

    def resolve_call(self, name, visited, depth):
        value = self._lookup(name)
        if value is None:
            return None
        return _analyze_value(value, visited, depth)


def _analyze_value(value, visited, depth):
    """Effect report for a resolved callable, or None."""
    value = getattr(value, "original", value)
    if isinstance(value, types.FunctionType):
        return _analyze_function(value, visited, depth)
    partial_func = getattr(value, "func", None)
    if partial_func is not None and hasattr(value, "args") and hasattr(
        value, "keywords"
    ):
        # functools.partial: the wrapped function's effects apply.
        return _analyze_value(partial_func, visited, depth)
    bound = getattr(value, "__func__", None)
    if bound is not None:
        return _analyze_value(bound, visited, depth)
    if isinstance(value, type):
        if issubclass(value, BaseException):
            return EffectReport()  # constructing exceptions is pure
        if getattr(value, "__dataclass_fields__", None) is not None:
            # The generated __init__ assigns fields to a fresh
            # instance; only a user __post_init__ can act beyond that.
            post = getattr(value, "__post_init__", None)
            if post is None:
                return EffectReport()
            if isinstance(post, types.FunctionType):
                return _analyze_function(
                    post, visited, depth, self_fresh=True
                )
            return None
        init = value.__init__
        if init is object.__init__:
            return EffectReport()
        if isinstance(init, types.FunctionType):
            return _analyze_function(
                init, visited, depth, self_fresh=True
            )
        return None
    return None


def _analyze_function(fn, visited, depth, self_fresh=False):
    code = getattr(fn, "__code__", None)
    if code is None:
        return EffectReport.opaque("no analyzable code object")
    if code in visited:
        # Recursive cycle: the call itself adds no new effects beyond
        # what the in-progress analysis of this code already collects.
        return EffectReport()
    if depth <= 0:
        return EffectReport.opaque("call-graph depth limit reached")
    cache_key = (code, bool(self_fresh))
    if cache_key in _EFFECTS_CACHE:
        return _EFFECTS_CACHE[cache_key]
    fndef = function_ast(fn)
    if fndef is None:
        report = EffectReport.opaque(
            "source of %r is unavailable"
            % getattr(fn, "__name__", fn)
        )
    else:
        report = scan_effects(
            fndef,
            resolver=_RuntimeResolver(fn),
            self_fresh=self_fresh,
            _visited=visited | {code},
            _depth=depth,
        )
    _EFFECTS_CACHE[cache_key] = report
    return report


def analyze_effects(fn):
    """The :class:`EffectReport` for a live function (memoized).

    Accepts plain functions, lambdas, ``@nested_udf``-decorated
    functions (the pre-rewrite original is analyzed),
    ``functools.partial`` objects, and bound methods.  Functions whose
    source is unavailable get an all-unknown report.
    """
    report = _analyze_value(fn, frozenset(), _MAX_DEPTH)
    if report is None:
        return EffectReport.opaque(
            "%r is not an analyzable callable" % (fn,)
        )
    return report


def task_effects(fns):
    """Combined report over a task's UDFs (``()`` -> all proven)."""
    return combine_reports([analyze_effects(fn) for fn in fns])


# ----------------------------------------------------------------------
# Static resolution (module source, no imports)
# ----------------------------------------------------------------------


class _StaticResolver:
    """Resolves bare-name calls against a module AST's top-level
    function definitions (the CLI's no-import static pass)."""

    def __init__(self, module_tree):
        self.functions = {}
        self.classes = set()
        if module_tree is not None:
            for node in module_tree.body:
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    self.functions[node.name] = node
                elif isinstance(node, ast.ClassDef):
                    self.classes.add(node.name)

    def module_name(self, name):
        if name in self.functions:
            return None
        return name  # syntactic: `random.random()` reads as module use

    def resolves_to_class(self, name):
        if name in self.classes:
            return True
        value = getattr(builtins, name, None)
        return isinstance(value, type)

    def resolve_call(self, name, visited, depth):
        fndef = self.functions.get(name)
        if fndef is None:
            return None
        if id(fndef) in visited:
            return EffectReport()
        if depth <= 0:
            return EffectReport.opaque("call-graph depth limit reached")
        return scan_effects(
            fndef,
            resolver=self,
            _visited=visited | {id(fndef)},
            _depth=depth,
        )


def static_resolver(module_tree):
    """A resolver over a parsed module for :func:`scan_effects`."""
    return _StaticResolver(module_tree)


def runtime_resolver(fn):
    """A resolver over a live function's closure cells and globals for
    :func:`scan_effects` -- lets callers scan a located AST (with
    file-absolute offsets) while still resolving helpers at runtime."""
    return _RuntimeResolver(getattr(fn, "original", fn))


# ----------------------------------------------------------------------
# Diagnostics (NPL501 / NPL502 / NPL503)
# ----------------------------------------------------------------------


def effect_diagnostics(report, filename="", udf_name="<udf>"):
    """NPL5xx diagnostics for every *refuted* dimension of a report.

    Unknown dimensions produce no diagnostic here -- unknown is the
    analysis saying "no proof either way", which would be noise on
    every non-trivial UDF; only definite effects are reported.  The
    plan-level NPL504 (auto-cache suppressed by unknown purity) is
    emitted by :mod:`repro.analysis.plan_lint` instead.
    """
    from .diagnostics import make_diagnostic

    prefixes = {
        PURITY: "UDF %r is impure" % udf_name,
        DETERMINISM: (
            "UDF %r is nondeterministic; task retries, straggler "
            "re-execution, and speculation may observe different "
            "results" % udf_name
        ),
        IO: "UDF %r performs external I/O" % udf_name,
    }
    diags = []
    seen = set()
    for reason in report.reasons:
        if not reason.refuting:
            continue
        code = DIMENSION_CODES[reason.dimension]
        key = (code, reason.message, reason.line, reason.col)
        if key in seen:
            continue
        seen.add(key)
        diags.append(make_diagnostic(
            code,
            "%s: %s" % (prefixes[reason.dimension], reason.message),
            file=filename,
            line=reason.line,
            col=reason.col,
        ))
    return diags


# ----------------------------------------------------------------------
# Plan-level combination, explain notes, fingerprints
# ----------------------------------------------------------------------


def _node_udfs(node):
    """The user functions a plan node executes."""
    if isinstance(node, (p.Map, p.FlatMap, p.Filter, p.MapPartitions,
                         p.ReduceByKey)):
        return (node.fn,)
    return ()


def plan_effects(root):
    """Cumulative subtree effect reports, keyed by ``id(node)``.

    A node's report combines its own UDFs' effects with all of its
    children's reports, so ``plan_effects(root)[id(node)]`` answers
    "is everything needed to (re)compute this node proven pure /
    deterministic / io-free?" -- the question auto-caching and
    artifact reuse ask.
    """
    reports = {}
    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        key = id(node)
        if key in reports:
            continue
        if not expanded:
            stack.append((node, True))
            for child in node.children:
                if id(child) not in reports:
                    stack.append((child, False))
            continue
        own = [analyze_effects(fn) for fn in _node_udfs(node)]
        child_reports = [reports[id(child)] for child in node.children]
        reports[key] = combine_reports(own + child_reports)
    return reports


def subtree_effects(root):
    """The combined :class:`EffectReport` of a whole subtree."""
    return plan_effects(root)[id(root)]


def effects_notes(root):
    """Per-node effect annotations for ``Bag.explain(effects=True)``.

    Only nodes that run a UDF carry a note (sources and pure-plumbing
    nodes would all read ``pure det io-free`` and drown the signal).
    """
    notes = {}
    for node in p.iter_nodes(root):
        fns = _node_udfs(node)
        if not fns:
            continue
        notes[id(node)] = task_effects(fns).summary()
    return notes


def fingerprint_function(fn, _visited=None, _depth=_MAX_DEPTH):
    """Canonical AST fingerprint of a function and its resolvable
    helpers, or ``None`` when no source is available.

    Two functions with the same fingerprint build the same plan from
    the same inputs (up to closure *values*, which callers must fold
    into their own keys).  The serve layer keys cross-job artifacts by
    it so a re-registered program with a different body can never be
    served another program's artifact.
    """
    fn = getattr(fn, "original", fn)
    partial_func = getattr(fn, "func", None)
    if partial_func is not None and hasattr(fn, "keywords"):
        return fingerprint_function(partial_func, _visited, _depth)
    bound = getattr(fn, "__func__", None)
    if bound is not None:
        return fingerprint_function(bound, _visited, _depth)
    code = getattr(fn, "__code__", None)
    if code is None:
        return None
    visited = _visited if _visited is not None else frozenset()
    if code in visited or _depth <= 0:
        return "cycle"
    fndef = function_ast(fn)
    if fndef is None:
        return None
    resolver = _RuntimeResolver(fn)
    parts = [ast.dump(fndef)]
    called = sorted({
        node.func.id
        for node in ast.walk(fndef)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
    })
    for name in called:
        if name in _PURE_BUILTINS or name in (
            "id", "hash", "print", "open", "input",
        ):
            continue
        value = resolver._lookup(name)
        if value is None or isinstance(value, types.ModuleType):
            continue
        helper = fingerprint_function(
            value, visited | {code}, _depth - 1
        )
        if helper is not None:
            parts.append("%s=%s" % (name, helper))
    digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
    return digest.hexdigest()[:16]


def plan_fingerprint(root):
    """Canonical fingerprint of a plan: structure + UDF ASTs.

    Walks the plan in the same deterministic pre-order as
    :func:`repro.engine.plan.assign_node_ids` and hashes each node's
    operator type, partition count, and the AST fingerprints of its
    UDFs.  Nodes whose UDF has no recoverable source contribute an
    ``opaque`` marker, so two plans only share a fingerprint when
    every UDF's code is provably identical.
    """
    parts = []
    for node in p.iter_nodes_ordered(root):
        fields = [type(node).__name__,
                  str(getattr(node, "num_partitions", ""))]
        for fn in _node_udfs(node):
            fields.append(fingerprint_function(fn) or "opaque")
        parts.append(":".join(fields))
    digest = hashlib.sha256("|".join(parts).encode("utf-8"))
    return digest.hexdigest()[:16]

"""Matrix-as-nested-collection operations (paper Sec. 1).

The paper's first example of natural nesting in data: "a nested
collection might arise when treating a matrix as a vector of vectors".
A matrix is represented as a bag of ``(row_index, (col_index, value))``
records; nesting by row makes every row an inner bag, and row-wise
operations become lifted one-liners.

All operations return flat keyed bags so results compose with further
engine processing.
"""

import math

from ..core.nestedbag import group_by_key_into_nested_bag


def matrix_bag(ctx, rows):
    """Build the entries bag from a dense row-major matrix.

    Args:
        ctx: Engine context.
        rows: ``[[v, ...], ...]`` dense values.

    Returns:
        ``Bag[(row_index, (col_index, value))]``.
    """
    entries = [
        (i, (j, value))
        for i, row in enumerate(rows)
        for j, value in enumerate(row)
    ]
    return ctx.bag_of(entries)


def nested_rows(matrix, lowering=None):
    """Nest a matrix entries bag by row: one inner bag per row."""
    return group_by_key_into_nested_bag(matrix, lowering)


def row_sums(matrix):
    """``Bag[(row_index, sum)]`` via a lifted aggregation."""
    nested = nested_rows(matrix)
    sums = nested.map_inner(
        lambda row: row.map(lambda entry: entry[1]).sum()
    )
    return sums.to_bag()


def row_norms(matrix):
    """``Bag[(row_index, l2_norm)]``."""
    nested = nested_rows(matrix)
    norms = nested.map_inner(
        lambda row: row.map(lambda entry: entry[1] ** 2)
        .sum()
        .map(math.sqrt)
    )
    return norms.to_bag()


def normalize_rows(matrix):
    """Scale every row to unit L2 norm (zero rows stay zero).

    The per-row norm is an InnerScalar closure of the per-entry map --
    the Sec. 5.1 ``mapWithClosure`` pattern on matrix data.

    Returns ``Bag[(row_index, (col_index, value))]``.
    """
    nested = nested_rows(matrix)

    def udf(_keys, row):
        norm = row.map(lambda entry: entry[1] ** 2).sum().map(
            math.sqrt
        )
        return row.map_with_closure(
            norm,
            lambda entry, n: (
                entry[0], entry[1] / n if n else entry[1]
            ),
        )

    return nested.map_groups(udf).to_bag()


def matrix_vector_product(matrix, vector_bag):
    """``A @ x`` with the vector living *outside* the nested program.

    ``vector_bag`` is a flat ``Bag[(col_index, value)]`` -- a closure of
    the lifted UDF -- so the per-row dot product uses the half-lifted
    join of Sec. 5.2 rather than replicating the vector once per row.

    Returns ``Bag[(row_index, value)]``.
    """
    nested = nested_rows(matrix)

    def udf(_keys, row):
        paired = row.join_with_plain(vector_bag)
        return paired.map(
            lambda kv: kv[1][0] * kv[1][1]
        ).sum()

    return nested.map_groups(udf).to_bag()


def frobenius_norm(matrix):
    """The whole-matrix Frobenius norm (a flat aggregation)."""
    total = matrix.map(lambda entry: entry[1][1] ** 2).sum()
    return math.sqrt(total)


# ---------------------------------------------------------------------------
# Sequential references
# ---------------------------------------------------------------------------


def row_sums_reference(rows):
    return {i: sum(row) for i, row in enumerate(rows)}


def normalize_rows_reference(rows):
    normalized = []
    for row in rows:
        norm = math.sqrt(sum(v * v for v in row))
        normalized.append(
            [v / norm if norm else v for v in row]
        )
    return normalized


def matrix_vector_reference(rows, vector):
    return {
        i: sum(v * vector[j] for j, v in enumerate(row))
        for i, row in enumerate(rows)
    }

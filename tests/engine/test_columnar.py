"""Columnar partitions: value fidelity, transport, sizing."""

import pickle

import pytest

from repro.engine import EngineContext, laptop_config
from repro.engine.columnar import (
    ColumnarPartition,
    as_records,
    maybe_columnar,
)
from repro.engine.sizing import estimate_size


class TestEncoding:
    def test_int_scalars_roundtrip(self):
        records = [3, -7, 0, 2**62]
        part = ColumnarPartition.from_records(records)
        assert part is not None
        assert part.to_records() == records
        assert list(part) == records
        assert all(type(v) is int for v in part)

    def test_float_scalars_roundtrip(self):
        records = [1.5, -0.25, 0.0, 3e300]
        part = ColumnarPartition.from_records(records)
        assert part.to_records() == records
        assert all(type(v) is float for v in part)

    def test_tuple_records_roundtrip(self):
        records = [(1, 2.5), (3, -4.0), (0, 0.0)]
        part = ColumnarPartition.from_records(records)
        assert part.kinds == "if"
        assert part.to_records() == records
        assert all(type(r) is tuple for r in part)

    def test_one_tuples_stay_tuples(self):
        records = [(1,), (2,), (3,)]
        part = ColumnarPartition.from_records(records)
        assert part is not None
        assert not part.scalar
        assert part.to_records() == records

    def test_empty_list_is_not_encoded(self):
        assert ColumnarPartition.from_records([]) is None

    def test_bools_are_not_encoded(self):
        # True would decode as 1: a changed value, so refuse.
        assert ColumnarPartition.from_records([True, False]) is None
        assert ColumnarPartition.from_records([(1, True)]) is None

    def test_big_ints_are_not_encoded(self):
        assert ColumnarPartition.from_records([1, 2**70]) is None

    def test_mixed_columns_are_not_encoded(self):
        assert ColumnarPartition.from_records([1, 2.0]) is None
        assert ColumnarPartition.from_records([1, "x"]) is None
        assert ColumnarPartition.from_records([(1, 2), (3, 4.0)]) is None

    def test_ragged_tuples_are_not_encoded(self):
        assert ColumnarPartition.from_records([(1, 2), (3,)]) is None

    def test_non_list_is_not_encoded(self):
        assert ColumnarPartition.from_records((1, 2)) is None
        assert ColumnarPartition.from_records(iter([1])) is None


class TestMixedPromotion:
    """``promote_mixed=True``: int/float columns promote losslessly or
    reject the partition -- never a silent truncation."""

    def test_lossless_promotion(self):
        part = ColumnarPartition.from_records(
            [1, 2.5, 3], promote_mixed=True
        )
        assert part is not None
        assert part.kinds == "f"
        # The promoted column decodes as floats -- exactly the values,
        # with the documented type change.
        assert part.to_records() == [1.0, 2.5, 3.0]
        assert all(type(v) is float for v in part)

    def test_tuple_column_promotion(self):
        part = ColumnarPartition.from_records(
            [(1, 2.5), (2.0, 3), (3, 4)], promote_mixed=True
        )
        assert part is not None
        assert part.kinds == "ff"
        assert part.to_records() == [(1.0, 2.5), (2.0, 3.0), (3.0, 4.0)]

    def test_unrepresentable_int_rejects_partition(self):
        # 2**53 + 1 does not survive the float round-trip: no encode.
        assert ColumnarPartition.from_records(
            [1, 2.5, 2**53 + 1], promote_mixed=True
        ) is None

    def test_overflowing_int_rejects_partition(self):
        assert ColumnarPartition.from_records(
            [1, 2.5, 10**400], promote_mixed=True
        ) is None

    def test_exact_large_ints_still_promote(self):
        records = [2.5, 2**53]  # 2**53 is exactly a double
        part = ColumnarPartition.from_records(
            records, promote_mixed=True
        )
        assert part is not None
        assert part.to_records() == [2.5, float(2**53)]

    def test_default_still_rejects_mixed(self):
        # Off by default: promotion changes decoded types, which the
        # value-fidelity contract forbids unless opted into.
        assert ColumnarPartition.from_records([1, 2.5]) is None

    def test_pure_columns_do_not_promote(self):
        # An unmixed int column must keep decoding as ints even when
        # promotion is enabled.
        part = ColumnarPartition.from_records(
            [1, 2, 3], promote_mixed=True
        )
        assert part is not None
        assert part.kinds == "i"
        assert all(type(v) is int for v in part)

    def test_non_numeric_mixed_still_rejects(self):
        assert ColumnarPartition.from_records(
            [1, 2.5, "x"], promote_mixed=True
        ) is None


class TestAccess:
    def test_len_and_getitem(self):
        part = ColumnarPartition.from_records([10, 20, 30])
        assert len(part) == 3
        assert part[1] == 20
        assert type(part[1]) is int
        assert part[-1] == 30

    def test_slice_returns_list(self):
        part = ColumnarPartition.from_records([10, 20, 30, 40])
        assert part[1:3] == [20, 30]

    def test_tuple_getitem(self):
        part = ColumnarPartition.from_records([(1, 2.0), (3, 4.0)])
        assert part[0] == (1, 2.0)
        assert type(part[0][0]) is int
        assert type(part[0][1]) is float

    def test_equality(self):
        records = [1, 2, 3]
        a = ColumnarPartition.from_records(records)
        b = ColumnarPartition.from_records(records)
        assert a == b
        assert a == records
        assert a != [1, 2]

    def test_concatenation_decodes_to_list(self):
        part = ColumnarPartition.from_records([1, 2])
        assert part + [3] == [1, 2, 3]
        assert [0] + part == [0, 1, 2]
        other = ColumnarPartition.from_records([9])
        assert part + other == [1, 2, 9]


class TestTransport:
    def test_pickle_roundtrip(self):
        records = [(i, i * 0.5) for i in range(100)]
        part = ColumnarPartition.from_records(records)
        clone = pickle.loads(pickle.dumps(part))
        assert isinstance(clone, ColumnarPartition)
        assert clone.to_records() == records
        assert clone.kinds == part.kinds

    def test_pickle_is_compact_for_floats(self):
        # 8 raw bytes per value vs pickle's 9-byte BINFLOAT opcodes
        # (small *ints* pickle tighter than 8 bytes; floats are the
        # transport-win case).
        records = [float(i) for i in range(1000)]
        columnar = len(
            pickle.dumps(ColumnarPartition.from_records(records))
        )
        boxed = len(pickle.dumps(records))
        assert columnar < boxed


class TestSizing:
    def test_nbytes_counts_buffers(self):
        part = ColumnarPartition.from_records([(i, 0.0) for i in range(50)])
        assert part.nbytes == 50 * 8 * 2

    def test_estimator_uses_buffer_bytes(self):
        records = list(range(10_000))
        part = ColumnarPartition.from_records(records)
        assert estimate_size(part) < estimate_size(records)
        assert estimate_size(part) >= part.nbytes


class TestAdapters:
    def test_maybe_columnar_passthrough(self):
        records = ["a", "b"]
        assert maybe_columnar(records) is records

    def test_maybe_columnar_encodes(self):
        part = maybe_columnar([1, 2, 3])
        assert isinstance(part, ColumnarPartition)

    def test_as_records_normalizes(self):
        records = [1, 2, 3]
        part = maybe_columnar(records)
        decoded = as_records(part)
        assert type(decoded) is list
        assert decoded == records
        assert as_records(records) is records


class TestEngineIntegration:
    @pytest.fixture
    def compiled_ctx(self):
        return EngineContext(laptop_config(compile_pipelines=True))

    def test_map_partitions_sees_a_real_list(self, compiled_ctx):
        seen_types = []

        def probe(part, _index):
            seen_types.append(type(part))
            return part

        out = (
            compiled_ctx.bag_of(range(40), num_partitions=4)
            .map(_double)
            .map_partitions(probe)
            .collect()
        )
        assert sorted(out) == sorted(x * 2 for x in range(40))
        assert all(t is list for t in seen_types)

    def test_results_match_interpreted(self):
        def run(compile_pipelines):
            with EngineContext(
                laptop_config(compile_pipelines=compile_pipelines)
            ) as ctx:
                return (
                    ctx.bag_of(range(60), num_partitions=4)
                    .map(_double)
                    .map(_key)
                    .reduce_by_key(_add)
                    .collect()
                )

        assert sorted(run(True)) == sorted(run(False))


def _double(x):
    return x * 2


def _key(x):
    return (x % 5, x)


def _add(a, b):
    return a + b

"""Accounting windows and bounded long-lived context state.

``ctx.begin_job()``/``ctx.end_job()`` let one context serve an
unbounded stream of jobs: each window's engine jobs are drained out of
the trace into an eagerly-computed ``JobAccounting``, the decision log
is emptied per window, and dead plans' layout-registry entries are
swept -- so nothing retained grows with the number of jobs served.
"""

import gc
import threading

import pytest

from repro.engine import EngineContext, laptop_config


def _run_one(ctx, n=40, tag=""):
    return ctx.bag_of(range(n)).map(lambda x: x * 2).count(label=tag)


class TestAccountingWindows:
    def test_window_summarizes_and_drains(self, ctx):
        window = ctx.begin_job()
        assert _run_one(ctx, tag="w0") == 40
        assert _run_one(ctx, tag="w1") == 40
        accounting = ctx.end_job(window)
        assert accounting.num_jobs == 2
        assert accounting.simulated_seconds > 0
        assert accounting.total_records > 0
        assert [j.label for j in accounting.jobs] == ["w0", "w1"]
        # Drained: the live trace no longer holds the window's jobs.
        assert ctx.trace.num_jobs == 0

    def test_drain_false_keeps_trace(self, ctx):
        window = ctx.begin_job()
        _run_one(ctx)
        accounting = ctx.end_job(window, drain=False)
        assert accounting.num_jobs == 1
        assert ctx.trace.num_jobs == 1

    def test_jobs_outside_window_not_claimed(self, ctx):
        _run_one(ctx, tag="before")
        window = ctx.begin_job()
        _run_one(ctx, tag="inside")
        accounting = ctx.end_job(window)
        assert [j.label for j in accounting.jobs] == ["inside"]
        assert [j.label for j in ctx.trace.jobs] == ["before"]

    def test_gather_jobs_belong_to_window(self, ctx):
        shared = ctx.bag_of(range(60)).cache()
        window = ctx.begin_job()
        totals = ctx.gather(
            lambda: shared.map(lambda x: x).count(label="g0"),
            lambda: shared.filter(lambda x: x < 30).count(label="g1"),
        )
        accounting = ctx.end_job(window)
        assert totals == [60, 30]
        # Both gather-thread jobs carry the window's ticket.
        assert sorted(j.label for j in accounting.jobs) == [
            "g0", "g1",
        ]
        assert ctx.trace.num_jobs == 0

    def test_concurrent_windows_are_isolated(self, config):
        ctx = EngineContext(config)
        out = {}
        barrier = threading.Barrier(2, timeout=30)

        def worker(name, count):
            barrier.wait()
            window = ctx.begin_job()
            for i in range(count):
                _run_one(ctx, tag="%s%d" % (name, i))
            out[name] = ctx.end_job(window)

        threads = [
            threading.Thread(target=worker, args=("x", 3)),
            threading.Thread(target=worker, args=("y", 2)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert out["x"].num_jobs == 3
        assert out["y"].num_jobs == 2
        assert sorted(j.label for j in out["x"].jobs) == [
            "x0", "x1", "x2",
        ]
        assert ctx.trace.num_jobs == 0

    def test_accounting_matches_undrained_totals(self, config):
        plain = EngineContext(config)
        _run_one(plain, n=50)
        expected = plain.simulated_seconds()

        windowed = EngineContext(config)
        window = windowed.begin_job()
        _run_one(windowed, n=50)
        accounting = windowed.end_job(window)
        assert accounting.simulated_seconds == pytest.approx(expected)

    def test_accounting_to_dict_is_json_ready(self, ctx):
        window = ctx.begin_job()
        _run_one(ctx)
        record = ctx.end_job(window).to_dict()
        assert record["jobs"] == 1
        assert record["stages"] >= 1
        assert record["simulated_seconds"] > 0

    def test_window_drains_decisions(self, ctx):
        window = ctx.begin_job()
        grouped = ctx.bag_of(
            [(i % 4, i) for i in range(40)]
        ).group_by_key(4).cache()
        grouped.count()
        joined = grouped.join(
            ctx.bag_of([(k, k) for k in range(4)]), num_partitions=4
        )
        assert joined.count() > 0
        accounting = ctx.end_job(window)
        assert any(
            d.choice == "adopt-left" for d in accounting.decisions
        )
        assert ctx.executor.decisions == []


class TestBoundedLongLivedContext:
    def test_hundred_jobs_bounded_state(self, config):
        """The satellite regression test: 100 sequential windowed jobs
        leave the context no bigger than after one."""
        ctx = EngineContext(config)
        total_simulated = 0.0
        for i in range(100):
            window = ctx.begin_job()
            # Each job shuffles (registers a layout) and caches
            # nothing, so without draining + sweeping every piece of
            # cross-job state would grow by ~1 entry per job.
            grouped = ctx.bag_of(
                [(j % 5, j) for j in range(50)]
            ).group_by_key(5)
            assert grouped.count(label="job%d" % i) == 5
            accounting = ctx.end_job(window)
            total_simulated += accounting.simulated_seconds
            assert accounting.num_jobs == 1
        # Our own local is the only thing keeping the last plan alive.
        grouped = None  # noqa: F841
        gc.collect()
        ctx.executor.sweep_layouts()
        assert ctx.trace.num_jobs == 0
        assert ctx.executor.decisions == []
        assert ctx.executor.layout_registry_size() == 0
        assert total_simulated > 0

    def test_cached_bag_survives_sweep(self, ctx):
        kept = ctx.bag_of(
            [(i % 4, i) for i in range(40)]
        ).group_by_key(4).cache()
        window = ctx.begin_job()
        assert kept.count() == 4
        ctx.end_job(window)
        gc.collect()
        ctx.executor.sweep_layouts()
        # The cached bag pins its subtree, so its layout entry must
        # survive for cross-job adoption...
        assert ctx.executor.layout_registry_size() == 1
        # ...and later windows can still adopt it.
        window = ctx.begin_job()
        joined = kept.join(
            ctx.bag_of([(k, k) for k in range(4)]), num_partitions=4
        )
        assert joined.count() > 0
        accounting = ctx.end_job(window)
        assert any(
            d.choice == "adopt-left" for d in accounting.decisions
        )


class TestUncacheReleasesState:
    def test_uncache_drops_layout_registry_entries(self, ctx):
        bag = ctx.bag_of(
            [(i % 4, i) for i in range(40)]
        ).group_by_key(4).cache()
        assert bag.count() == 4
        assert ctx.executor.layout_registry_size() >= 1
        assert bag.node.materialized is not None
        bag.uncache()
        assert bag.node.materialized is None
        assert ctx.executor.layout_registry_size() == 0

    def test_post_uncache_join_reshuffles_correctly(self, ctx):
        bag = ctx.bag_of(
            [(i % 4, i) for i in range(40)]
        ).group_by_key(4).cache()
        bag.count()
        other = ctx.bag_of([(k, k * 10) for k in range(4)])
        warm = sorted(
            (k, len(g), v)
            for k, (g, v) in bag.join(other, num_partitions=4).collect()
        )
        warm_decisions = len(ctx.optimizer_decisions)
        assert warm_decisions >= 1
        bag.uncache()
        # No registered layout: the join must fall back to a real
        # shuffle -- and still produce identical results.
        cold = sorted(
            (k, len(g), v)
            for k, (g, v) in bag.join(other, num_partitions=4).collect()
        )
        assert cold == warm

    def test_release_plan_returns_entry_count(self, ctx):
        bag = ctx.bag_of(
            [(i % 4, i) for i in range(40)]
        ).group_by_key(4).cache()
        bag.count()
        assert ctx.executor.release_plan(bag.node) == 1
        assert ctx.executor.release_plan(bag.node) == 0

"""Worker-event clock re-anchoring onto the driver timeline.

The anchor for a task attempt's span -- and for every worker-side event
the attempt recorded -- is the attempt's **own** ``start_epoch``, not
its task set's dispatch time.  A worker that runs two tasks
back-to-back starts the second long after dispatch; anchoring to the
dispatch window would drag the second task's events backwards and
mis-order the worker lane.  The dispatch window only sanity-checks the
epoch: an anchor outside it by more than the drift tolerance falls
back to clamping.
"""

import time

from repro.engine import EngineContext, TaskScheduler, laptop_config
from repro.engine.runtime.task import TaskOutcome, record_worker_event
from repro.observe import MemorySink, Tracer
from repro.observe.events import KIND_SERDE, KIND_TASK, KIND_TASK_SET


class RecordingSleepTask:
    """Sleeps, then records one worker-side event with a known offset."""

    operator = "Recording[test]"

    def __call__(self, seconds):
        time.sleep(seconds)
        record_worker_event(
            "probe:%g" % seconds, KIND_SERDE, dur=0.0, seconds=seconds
        )
        return seconds


def traced_scheduler(**overrides):
    tracer = Tracer(MemorySink())
    scheduler = TaskScheduler(
        laptop_config(backend="serial", **overrides), tracer=tracer
    )
    return scheduler, tracer


class TestAttemptAnchoring:
    def test_back_to_back_tasks_anchor_to_their_own_start(self):
        # Serial backend: task 1 starts ~0.05s after dispatch because
        # task 0 slept first.  Its span must start then, not at the
        # task set's dispatch time.
        scheduler, tracer = traced_scheduler()
        scheduler.run_stage(RecordingSleepTask(), [(0.05,), (0.0,)])
        events = tracer.events()
        (window,) = [e for e in events if e.kind == KIND_TASK_SET]
        tasks = sorted(
            (e for e in events if e.kind == KIND_TASK),
            key=lambda e: e.args["task"],
        )
        assert len(tasks) == 2
        assert tasks[0].ts - window.ts < 0.02
        assert tasks[1].ts >= tasks[0].end - 0.001
        scheduler.close()

    def test_worker_events_round_trip_inside_their_task_span(self):
        scheduler, tracer = traced_scheduler()
        scheduler.run_stage(RecordingSleepTask(), [(0.03,), (0.03,)])
        events = tracer.events()
        tasks = [e for e in events if e.kind == KIND_TASK]
        probes = [e for e in events if e.kind == KIND_SERDE]
        assert len(probes) == 2
        slack = 1e-3
        for probe in probes:
            owner = [
                t
                for t in tasks
                if t.ts - slack <= probe.ts <= t.end + slack
            ]
            assert owner, "probe %r outside every task span" % probe.name
            # The probe fired after the sleep, so it sits near the end
            # of its task span -- anchored to the attempt, not dispatch.
            assert probe.ts - owner[0].ts >= 0.02

    def test_round_trip_across_process_boundary(self):
        ctx = EngineContext(
            laptop_config(backend="process", num_workers=2), trace=True
        )
        try:
            ctx.bag_of(range(8), num_partitions=2).map(
                lambda x: x + 1
            ).collect()
            events = ctx.tracer.events()
        finally:
            ctx.close()
        tasks = [e for e in events if e.kind == KIND_TASK]
        assert tasks
        worker_events = [
            e for e in events if e.lane.startswith("worker-")
        ]
        assert worker_events
        # Every worker-lane event falls inside its task set's window
        # (shared machine clock, re-anchored): nothing is dragged
        # before dispatch.
        windows = [e for e in events if e.kind == KIND_TASK_SET]
        slack = TaskScheduler.CLOCK_DRIFT_TOLERANCE_S
        earliest = min(w.ts for w in windows)
        latest = max(w.end for w in windows)
        for event in worker_events:
            assert event.ts >= earliest - slack
            assert event.end <= latest + slack


class TestDriftClamp:
    def _emit(self, start_epoch, window):
        tracer = Tracer(MemorySink())
        scheduler = TaskScheduler(
            laptop_config(backend="serial"), tracer=tracer
        )
        outcome = TaskOutcome(
            task_index=0,
            ok=True,
            value=None,
            seconds=0.1,
            worker_pid=12345,
            attempt=1,
            start_epoch=start_epoch,
            events=[("probe", KIND_SERDE, 0.05, 0.0, {})],
        )
        scheduler._emit_task_events(
            outcome, "Clamp[test]", 0, window[0], window[1]
        )
        return tracer.events()

    def test_sane_epoch_used_verbatim(self):
        events = self._emit(100.25, window=(100.0, 101.0))
        (task,) = [e for e in events if e.kind == KIND_TASK]
        (probe,) = [e for e in events if e.kind == KIND_SERDE]
        assert task.ts == 100.25
        assert abs(probe.ts - 100.30) < 1e-9

    def test_adjusted_clock_clamped_into_window(self):
        # start_epoch far before the dispatch window: the wall clock
        # was adjusted between reads, so the anchor clamps to the
        # window instead of trusting the bogus epoch.
        events = self._emit(42.0, window=(100.0, 101.0))
        (task,) = [e for e in events if e.kind == KIND_TASK]
        assert 100.0 <= task.ts <= 101.0

"""Runtime shuffle elision: the optimizer pass inside the executor."""

import dataclasses
import warnings

import pytest

from repro.engine import EngineContext, laptop_config
from repro.engine.partitioner import reset_unstable_key_warnings
from repro.engine.validate import validate_trace


def _add(a, b):
    return a + b


def _keyed(ctx, n=60, k=5):
    return ctx.bag_of(list(range(n))).map(lambda x: (x % k, x))


def _pair(optimized=True):
    config = dataclasses.replace(
        laptop_config(), optimize_shuffles=optimized
    )
    return EngineContext(config)


def _total_shuffle(ctx):
    return sum(
        stage.shuffle_read_records
        for job in ctx.trace.jobs
        for stage in job.stages
    )


def _shuffle_decisions(ctx):
    """Shuffle-pass decisions only: the compiled-pipeline pass also logs
    a decision per fused chain when REPRO_COMPILE=1 is in the
    environment (the CI ``compiled`` leg), and these assertions are
    about shuffle elision, not codegen."""
    return [
        d for d in ctx.optimizer_decisions
        if d.kind != "compiled-pipeline"
    ]


def _run_both(program):
    """(optimized ctx, plain ctx, optimized result, plain result)."""
    opt_ctx, plain_ctx = _pair(True), _pair(False)
    opt = program(opt_ctx)
    plain = program(plain_ctx)
    validate_trace(opt_ctx.trace)
    validate_trace(plain_ctx.trace)
    return opt_ctx, plain_ctx, opt, plain


def test_full_elision_same_results_lower_shuffle():
    def program(ctx):
        bag = _keyed(ctx).reduce_by_key(_add, 4).group_by_key(4)
        return sorted((k, sorted(v)) for k, v in bag.collect())

    opt_ctx, plain_ctx, opt, plain = _run_both(program)
    assert opt == plain
    assert _total_shuffle(opt_ctx) < _total_shuffle(plain_ctx)
    decisions = _shuffle_decisions(opt_ctx)
    assert [d.kind for d in decisions] == ["shuffle-elision"]
    assert decisions[0].choice == "elide"
    assert not _shuffle_decisions(plain_ctx)


def test_elided_stage_claims_savings_not_volume():
    ctx = _pair(True)
    _keyed(ctx).reduce_by_key(_add, 4).group_by_key(4).collect()
    elided = ctx.trace.jobs[-1].stages[-1]
    assert elided.kind == "shuffle"
    assert elided.shuffle_read_records == 0
    assert elided.shuffle_records_saved > 0


def test_cogroup_adoption_shuffles_only_one_side():
    def program(ctx):
        rbk = _keyed(ctx).reduce_by_key(_add, 4)
        joined = rbk.join(_keyed(ctx, n=40), num_partitions=4)
        return sorted(joined.collect())

    opt_ctx, plain_ctx, opt, plain = _run_both(program)
    assert opt == plain
    assert _total_shuffle(opt_ctx) < _total_shuffle(plain_ctx)
    assert [d.choice for d in _shuffle_decisions(opt_ctx)] == [
        "adopt-left"
    ]


def test_cached_bag_adopts_across_jobs():
    ctx = _pair(True)
    grouped = _keyed(ctx).group_by_key(4).cache()
    grouped.count()  # job 1 materializes the layout
    sizes = grouped.join(
        _keyed(ctx, n=40).map(lambda kv: (kv[0], kv[1] * 10)),
        num_partitions=4,
    )
    result = sorted(
        (k, len(groups), v) for k, (groups, v) in sizes.collect()
    )
    assert result
    assert "adopt-left" in [
        d.choice for d in _shuffle_decisions(ctx)
    ]


def test_partition_count_mismatch_is_not_elided():
    def program(ctx):
        bag = _keyed(ctx).reduce_by_key(_add, 4).group_by_key(8)
        return sorted((k, sorted(v)) for k, v in bag.collect())

    opt_ctx, plain_ctx, opt, plain = _run_both(program)
    assert opt == plain
    assert not _shuffle_decisions(opt_ctx)
    assert _total_shuffle(opt_ctx) == _total_shuffle(plain_ctx)


def test_key_rewriting_map_blocks_elision():
    ctx = _pair(True)
    bag = (
        _keyed(ctx)
        .reduce_by_key(_add, 4)
        .map(lambda kv: (kv[1], kv[0]))
        .group_by_key(4)
    )
    assert bag.count() > 0
    assert not _shuffle_decisions(ctx)


def test_preserves_partitioning_hint_enables_elision():
    def opaque(kv):
        return (kv[0], kv[1] + 1)

    ctx = _pair(True)
    bag = (
        _keyed(ctx)
        .reduce_by_key(_add, 4)
        .map_partitions(
            lambda part, _index: [opaque(kv) for kv in part],
            preserves_partitioning=True,
        )
        .group_by_key(4)
    )
    result = sorted((k, sorted(v)) for k, v in bag.collect())
    assert result
    assert [d.choice for d in _shuffle_decisions(ctx)] == ["elide"]


def test_optimize_shuffles_off_by_environment(monkeypatch):
    monkeypatch.setenv("REPRO_OPTIMIZE_SHUFFLES", "0")
    assert laptop_config().optimize_shuffles is False
    monkeypatch.setenv("REPRO_OPTIMIZE_SHUFFLES", "1")
    assert laptop_config().optimize_shuffles is True


def test_decision_detail_names_both_nodes():
    ctx = _pair(True)
    _keyed(ctx).reduce_by_key(_add, 4).group_by_key(4).collect()
    (decision,) = _shuffle_decisions(ctx)
    assert "GroupByKey" in decision.detail
    assert "ReduceByKey" in decision.detail


# ---------------------------------------------------------------------------
# repr()-fallback hashing warns once per key type (NPL203 at runtime)
# ---------------------------------------------------------------------------


class _ReprKey:
    def __init__(self, value):
        self.value = value

    def __hash__(self):
        return hash(self.value)

    def __eq__(self, other):
        return isinstance(other, _ReprKey) and other.value == self.value

    def __repr__(self):
        return "_ReprKey(%r)" % self.value


@pytest.fixture
def fresh_warnings():
    reset_unstable_key_warnings()
    yield
    reset_unstable_key_warnings()


def test_repr_fallback_warns_once_per_type(ctx, fresh_warnings):
    records = [(_ReprKey(i % 3), i) for i in range(12)]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        ctx.bag_of(records).reduce_by_key(_add).collect()
        ctx.bag_of(records).group_by_key().collect()
    npl203 = [
        w for w in caught
        if issubclass(w.category, RuntimeWarning)
        and "NPL203" in str(w.message)
    ]
    assert len(npl203) == 1
    assert "_ReprKey" in str(npl203[0].message)


def test_primitive_keys_do_not_warn(ctx, fresh_warnings):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        _keyed(ctx).reduce_by_key(_add).collect()
    assert not [
        w for w in caught if "NPL203" in str(w.message)
    ]

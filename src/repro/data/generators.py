"""Synthetic dataset generators for the paper's four tasks.

All generators are deterministic given a seed and produce laptop-scale
record counts; the cluster config's ``bytes_per_record`` maps counts onto
the paper's GB-scale axis (see DESIGN.md, substitution 3).
"""

import random

from .zipf import zipf_sizes


def visits_log(num_days, total_visits, bounce_fraction=0.4, skew=0.0,
               seed=0):
    """Page-visit records ``(day, ip)`` for the Bounce Rate task.

    Args:
        num_days: Number of grouping keys (days).
        total_visits: Total record count across all days (weak scaling
            keeps this constant while varying ``num_days``).
        bounce_fraction: Approximate fraction of single-visit IPs per day.
        skew: Zipf exponent for day sizes (0 = uniform, Sec. 9.5 uses a
            positive exponent).
        seed: RNG seed.
    """
    rng = random.Random(seed)
    sizes = zipf_sizes(num_days, total_visits, skew, seed)
    records = []
    for day in range(num_days):
        remaining = sizes[day]
        ip_counter = 0
        while remaining > 0:
            ip = "d%d-ip%d" % (day, ip_counter)
            ip_counter += 1
            if rng.random() < bounce_fraction or remaining == 1:
                visits = 1
            else:
                visits = min(remaining, rng.randint(2, 4))
            records.extend(("day%d" % day, ip) for _ in range(visits))
            remaining -= visits
    rng.shuffle(records)
    return records


def grouped_edges(num_groups, total_edges, vertices_per_group=None,
                  skew=0.0, seed=0):
    """Edges ``(group_id, (src, dst))`` for grouped PageRank.

    Each group is an independent random digraph over its own vertex set.
    Weak scaling varies ``num_groups`` at constant ``total_edges``.
    """
    rng = random.Random(seed)
    sizes = zipf_sizes(num_groups, total_edges, skew, seed)
    records = []
    for gid in range(num_groups):
        edges = sizes[gid]
        if vertices_per_group is None:
            # Group size scales with vertex count at constant average
            # degree (like a partitioned web graph): a bigger partition
            # is a bigger graph, not a denser one.
            vertices = max(2, edges // 4)
        else:
            vertices = max(2, vertices_per_group)
        for _ in range(edges):
            src = rng.randrange(vertices)
            dst = rng.randrange(vertices)
            if dst == src:
                dst = (dst + 1) % vertices
            records.append(("g%d" % gid, (src, dst)))
    rng.shuffle(records)
    return records


def component_graph(num_components, vertices_per_component, extra_edges=2,
                    seed=0):
    """Undirected edges ``(u, v)`` forming disjoint connected components.

    Vertices are globally-unique ints.  Each component is a random
    spanning tree plus ``extra_edges`` random extra edges, so connected
    components are exactly the construction blocks -- the ground truth
    for the Average Distances task (Sec. 2.2).
    """
    rng = random.Random(seed)
    edges = []
    next_vertex = 0
    for _ in range(num_components):
        vertices = list(
            range(next_vertex, next_vertex + vertices_per_component)
        )
        next_vertex += vertices_per_component
        shuffled = vertices[:]
        rng.shuffle(shuffled)
        for index in range(1, len(shuffled)):
            parent = shuffled[rng.randrange(index)]
            edges.append((parent, shuffled[index]))
        for _ in range(extra_edges):
            u, v = rng.sample(vertices, 2)
            edges.append((u, v))
    rng.shuffle(edges)
    return edges


def clustered_points(num_points, k, dim=2, spread=0.5, extent=10.0,
                     seed=0):
    """Points drawn around ``k`` Gaussian cluster centers (for K-means)."""
    rng = random.Random(seed)
    centers = [
        tuple(rng.uniform(-extent, extent) for _ in range(dim))
        for _ in range(k)
    ]
    points = []
    for _ in range(num_points):
        center = centers[rng.randrange(k)]
        points.append(
            tuple(c + rng.gauss(0.0, spread) for c in center)
        )
    return points


def initial_centroids(k, num_configs, dim=2, extent=10.0, seed=0):
    """Random centroid configurations for hyperparameter search.

    Returns ``[(config_id, (centroid, ...)), ...]`` with ``k`` centroids
    per configuration.
    """
    rng = random.Random(seed)
    configs = []
    for config_id in range(num_configs):
        centroids = tuple(
            tuple(rng.uniform(-extent, extent) for _ in range(dim))
            for _ in range(k)
        )
        configs.append(("cfg%d" % config_id, centroids))
    return configs


def grouped_points(num_configs, total_points, k, dim=2, seed=0):
    """Per-configuration point samples ``(config_id, point)``.

    Used by the weak-scaling K-means experiments (Fig. 1 / Fig. 3a): the
    per-configuration sample size varies inversely with the number of
    configurations, keeping total work constant.
    """
    sizes = zipf_sizes(num_configs, total_points, 0.0, seed)
    records = []
    for index in range(num_configs):
        points = clustered_points(
            sizes[index], k, dim=dim, seed=seed + index + 1
        )
        config_id = "cfg%d" % index
        records.extend((config_id, point) for point in points)
    rng = random.Random(seed)
    rng.shuffle(records)
    return records

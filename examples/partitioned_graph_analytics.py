"""Composable graph analytics across three nesting levels (Sec. 2.2).

The paper's composability story: a library already has
``connectedComps`` and ``avgDistances`` (the latter written for *one*
graph).  With nested parallelism they compose as

    connectedComps(g).map(avgDistances)

and Matryoshka parallelizes all three levels -- components, BFS sources
within a component, and the BFS frontier of one source -- inside a
single flat job chain.

Run:  python examples/partitioned_graph_analytics.py
"""

import repro
from repro.data import component_graph
from repro.tasks.avg_distances import (
    avg_distances_nested,
    avg_distances_reference,
)
from repro.tasks.graphs import connected_components

def main():
    ctx = repro.EngineContext(repro.paper_cluster_config())

    edges = component_graph(
        num_components=4, vertices_per_component=8, seed=21
    )
    print("Input graph: %d undirected edges" % len(edges))

    # Step 1 on its own: the flat library function.
    labels = connected_components(ctx, ctx.bag_of(edges))
    sizes = (
        labels.map(lambda vc: (vc[1], 1))
        .reduce_by_key(lambda a, b: a + b)
        .collect_as_map()
    )
    print("Connected components (id -> size):")
    for comp, size in sorted(sizes.items()):
        print("  component %-4d %d vertices" % (comp, size))

    # The composition: per-component average all-pairs distance, with
    # per-source BFS at nesting level 2 and frontier expansion at 3.
    averages = dict(avg_distances_nested(ctx, edges).collect())
    truth, _work = avg_distances_reference(edges)

    print()
    print("Average all-pairs hop distance per component:")
    for comp in sorted(averages):
        check = "ok" if abs(averages[comp] - truth[comp]) < 1e-9 else (
            "MISMATCH"
        )
        print(
            "  component %-4d %.4f  (reference %.4f, %s)"
            % (comp, averages[comp], truth[comp], check)
        )

    print()
    print("Trace:", ctx.trace.summary())
    print("Simulated cluster runtime: %.1f s" % ctx.simulated_seconds())

if __name__ == "__main__":
    main()

"""The parsing phase: AST rewriting of plain Python UDFs."""

import pytest

from repro.core.nestedbag import nested_map
from repro.errors import ParsingError
from repro.lang import nested_udf, parse_udf

# ---------------------------------------------------------------------------
# UDFs under test (module level so inspect.getsource works)
# ---------------------------------------------------------------------------


@nested_udf
def collatz_steps(n):
    steps = 0
    while n != 1 and steps < 50:
        n = (n // 2) if n % 2 == 0 else (3 * n + 1)
        steps = steps + 1
    return steps


@nested_udf
def classify(x):
    if x < 0:
        sign = "neg"
    elif x == 0:
        sign = "zero"
    else:
        sign = "pos"
    return sign


@nested_udf
def triangular(n):
    total = 0
    for i in range(n):
        total = total + i + 1
    return total


@nested_udf
def clamp_grow(x):
    while x < 20:
        x = x * 2
        if x > 20:
            x = 20
    return x


@nested_udf
def countdown(n):
    hits = 0
    for i in range(10, 0, -2):
        if i <= n:
            hits = hits + 1
    return hits


@nested_udf
def no_else_branch(x):
    y = 0
    if x > 5:
        y = x
    return y


@nested_udf
def boolean_mix(x):
    big = x > 10 or x < -10
    small = not big and x != 0
    return big, small


@nested_udf
def chained_compare(x):
    inside = 0 < x < 10
    return inside


def plain_reference(fn):
    return fn.original


# ---------------------------------------------------------------------------
# Tests
# ---------------------------------------------------------------------------


class TestPlainDegradation:
    """Rewritten UDFs behave exactly like the originals on plain values."""

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 27])
    def test_collatz(self, n):
        assert collatz_steps(n) == plain_reference(collatz_steps)(n)

    @pytest.mark.parametrize("x", [-3, 0, 9])
    def test_classify(self, x):
        assert classify(x) == plain_reference(classify)(x)

    @pytest.mark.parametrize("n", [0, 1, 5])
    def test_triangular(self, n):
        assert triangular(n) == n * (n + 1) // 2

    @pytest.mark.parametrize("x", [1, 3, 30])
    def test_clamp_grow(self, x):
        assert clamp_grow(x) == plain_reference(clamp_grow)(x)

    @pytest.mark.parametrize("n", [0, 4, 10])
    def test_countdown_negative_step_range(self, n):
        assert countdown(n) == plain_reference(countdown)(n)

    @pytest.mark.parametrize("x", [-20, -1, 0, 5, 11])
    def test_boolean_mix(self, x):
        assert boolean_mix(x) == plain_reference(boolean_mix)(x)

    @pytest.mark.parametrize("x", [-1, 5, 10])
    def test_chained_compare(self, x):
        assert chained_compare(x) == plain_reference(chained_compare)(x)


class TestLiftedExecution:
    """The same UDFs, applied to whole bags through nested_map."""

    def test_collatz_lifted(self, ctx):
        seeds = [1, 2, 3, 7, 27]
        got = nested_map(ctx.bag_of(seeds), collatz_steps)
        expected = sorted(
            plain_reference(collatz_steps)(n) for n in seeds
        )
        assert sorted(got.collect_values()) == expected

    def test_classify_lifted(self, ctx):
        got = nested_map(ctx.bag_of([-5, 0, 5]), classify)
        assert sorted(got.collect_values()) == ["neg", "pos", "zero"]

    def test_triangular_lifted(self, ctx):
        got = nested_map(ctx.bag_of([1, 3, 5]), triangular)
        assert sorted(got.collect_values()) == [1, 6, 15]

    def test_nested_if_inside_while_lifted(self, ctx):
        seeds = [1, 3, 30]
        got = nested_map(ctx.bag_of(seeds), clamp_grow)
        expected = sorted(
            plain_reference(clamp_grow)(x) for x in seeds
        )
        assert sorted(got.collect_values()) == expected

    def test_boolean_mix_lifted(self, ctx):
        big, small = nested_map(ctx.bag_of([-20, 5]), boolean_mix)
        assert sorted(big.collect_values()) == [False, True]
        assert sorted(small.collect_values()) == [False, True]

    def test_chained_compare_lifted(self, ctx):
        got = nested_map(ctx.bag_of([-1, 5, 10]), chained_compare)
        assert sorted(got.collect_values()) == [False, False, True]

    def test_if_without_else_lifted(self, ctx):
        got = nested_map(ctx.bag_of([2, 9]), no_else_branch)
        assert sorted(got.collect_values()) == [0, 9]


class TestTransformedSource:
    def test_while_becomes_combinator(self):
        source = collatz_steps.transformed_source
        assert "__mz_while_loop" in source
        assert "while " not in source

    def test_if_becomes_cond(self):
        source = classify.transformed_source
        assert "__mz_cond" in source

    def test_for_desugared(self):
        source = triangular.transformed_source
        assert "for " not in source
        assert "__mz_while_loop" in source

    def test_boolean_helpers_injected(self):
        source = boolean_mix.transformed_source
        assert "__mz_or" in source
        assert "__mz_not" in source

    def test_loop_vars_passed(self):
        assert "loop_vars=" in collatz_steps.transformed_source


class TestClosureCapture:
    def test_decorated_closure_over_enclosing_scope(self):
        limit = 10

        def make():
            bound = limit

            def stepper(x):
                while x < bound:
                    x = x + 4
                return x

            return stepper

        rewritten, _source = parse_udf(make())
        assert rewritten(1) == 13


class TestRejectedConstructs:
    def test_break_rejected(self):
        def bad(x):
            while x < 10:
                x += 1
                break
            return x

        with pytest.raises(ParsingError):
            parse_udf(bad)

    def test_continue_rejected(self):
        def bad(x):
            while x < 10:
                continue
            return x

        with pytest.raises(ParsingError):
            parse_udf(bad)

    def test_return_inside_loop_rejected(self):
        def bad(x):
            while x < 10:
                return x
            return x

        with pytest.raises(ParsingError):
            parse_udf(bad)

    def test_while_else_rejected(self):
        def bad(x):
            while x < 10:
                x += 1
            else:
                x = 0
            return x

        with pytest.raises(ParsingError):
            parse_udf(bad)

    def test_for_over_list_rejected(self):
        def bad(xs):
            total = 0
            for x in [1, 2, 3]:
                total += x
            return total

        with pytest.raises(ParsingError):
            parse_udf(bad)

    def test_non_literal_range_step_rejected(self):
        def bad(n, s):
            total = 0
            for i in range(0, n, s):
                total += i
            return total

        with pytest.raises(ParsingError):
            parse_udf(bad)

    def test_one_sided_unbound_assignment_rejected(self):
        def bad(x):
            if x > 0:
                fresh = 1
            return fresh

        with pytest.raises(ParsingError):
            parse_udf(bad)

    def test_lambda_has_no_source(self):
        with pytest.raises(ParsingError):
            parse_udf(eval("lambda x: x"))

"""Deeper NestedBags from lifted grouping (paper Sec. 7)."""

import pytest

from repro.core import group_by_key_into_nested_bag, nested_group_by_key


@pytest.fixture
def deeper(ctx):
    bag = ctx.bag_of(
        [
            ("g1", ("a", 1)), ("g1", ("a", 2)), ("g1", ("b", 5)),
            ("g2", ("a", 10)), ("g2", ("c", 20)),
        ]
    )
    nested = group_by_key_into_nested_bag(bag)
    return nested, nested_group_by_key(nested.inner)


class TestStructure:
    def test_composite_tags(self, deeper):
        _nested, two = deeper
        tags = {tag for tag, _k in two.keys.collect()}
        assert tags == {
            ("g1", "a"), ("g1", "b"), ("g2", "a"), ("g2", "c"),
        }

    def test_keys_scalar_holds_grouping_keys(self, deeper):
        _nested, two = deeper
        assert all(
            tag[1] == key for tag, key in two.keys.collect()
        )

    def test_level_is_two(self, deeper):
        nested, two = deeper
        assert two.lctx.level == 2
        assert two.lctx.parent is nested.lctx

    def test_no_shuffle_into_groups(self, deeper, ctx):
        """Like the top-level version: the inner representation is a
        narrow re-keying of the input, not a materialized grouping."""
        _nested, two = deeper
        assert "GroupByKey" not in two.inner.repr.explain()


class TestLiftedUdfsAtLevelTwo:
    def test_per_subgroup_aggregation(self, deeper):
        _nested, two = deeper
        sums = two.map_inner(lambda inner: inner.sum())
        assert sums.as_dict() == {
            ("g1", "a"): 3,
            ("g1", "b"): 5,
            ("g2", "a"): 10,
            ("g2", "c"): 20,
        }

    def test_results_roll_up_to_level_one(self, deeper):
        from repro.core.primitives import InnerBag

        nested, two = deeper
        sums = two.map_inner(lambda inner: inner.sum())
        rolled = InnerBag(two.lctx, sums.repr).retag_to_parent().sum()
        assert rolled.as_dict() == {"g1": 8, "g2": 30}

    def test_counts_per_subgroup(self, deeper):
        _nested, two = deeper
        counts = two.map_inner(lambda inner: inner.count())
        assert counts.as_dict()[("g1", "a")] == 2

    def test_flatten_roundtrip(self, deeper):
        _nested, two = deeper
        flattened = sorted(two.flatten().collect())
        assert flattened == [
            (("g1", "a"), 1), (("g1", "a"), 2), (("g1", "b"), 5),
            (("g2", "a"), 10), (("g2", "c"), 20),
        ]

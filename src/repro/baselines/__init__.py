"""Baseline systems the paper evaluates against.

* :mod:`outer_parallel` -- parallelize the outer level only.
* :mod:`inner_parallel` -- parallelize the inner level only (driver loop).
* :mod:`diql` -- a DIQL-style compile-time comprehension compiler.
"""

from .diql import DiqlQuery, Monoid
from .inner_parallel import group_locally, run_inner_parallel
from .outer_parallel import run_outer_parallel, sequential_udf

__all__ = [
    "DiqlQuery",
    "Monoid",
    "group_locally",
    "run_inner_parallel",
    "run_outer_parallel",
    "sequential_udf",
]

"""Driver-to-executor broadcast variables.

Mirrors Spark broadcasts: the driver ships a read-only value to every
executor.  The engine charges the broadcast volume to the current job and
raises a simulated OOM when the value cannot fit in executor memory, which
is how the paper's broadcast joins fail for large InnerScalars (Sec. 9.6).
"""

from ..errors import SimulatedOutOfMemory


class Broadcast:
    """A handle to a broadcast value.

    Attributes:
        value: The broadcast payload, readable from any UDF.
    """

    __slots__ = ("value", "num_records")

    def __init__(self, value, num_records):
        self.value = value
        self.num_records = num_records

    def __repr__(self):
        return "Broadcast(records=%d)" % self.num_records


def check_broadcast_fits(num_records, config, what="broadcasting dataset"):
    """Raise :class:`SimulatedOutOfMemory` if the payload exceeds memory.

    The payload must fit both in the driver and within a single executor's
    working-set budget.
    """
    needed = config.materialized_bytes(num_records)
    limit = min(
        config.executor_memory_limit_bytes, config.driver_memory_bytes
    )
    if needed > limit:
        raise SimulatedOutOfMemory(what, needed, limit)
